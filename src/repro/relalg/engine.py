"""The query engine facade: execute SQL statements against a Database.

This is the "execution engine" of the Youtopia architecture (Figure 2).  It
evaluates plain SQL — DDL, DML and SELECT — and is also used internally by the
coordination component to ground entangled queries against the database.
Entangled SELECTs are *not* handled here; they are routed to the coordination
component by the system facade (:class:`repro.core.system.YoutopiaSystem`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.errors import EvaluationError, PlanError
from repro.relalg.expressions import ExpressionEvaluator
from repro.relalg.optimizer import optimize
from repro.relalg.plan import PlanContext, PlanNode
from repro.relalg.planner import build_plan, output_columns
from repro.relalg.rows import RowEnv
from repro.sqlparser import ast, parse_statement
from repro.storage.database import Database
from repro.storage.schema import Column, ColumnType, TableSchema


@dataclass
class QueryResult:
    """Result of executing a statement.

    ``columns``/``rows`` are filled for SELECTs; ``affected`` for DML; DDL
    statements produce an empty result with ``command`` describing the action.
    """

    command: str
    columns: list[str] = field(default_factory=list)
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    affected: int = 0

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a 1x1 result (convenience for tests/CLI)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise EvaluationError("result is not a single scalar")
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)


class QueryEngine:
    """Plans and executes statements against a :class:`Database`."""

    def __init__(self, database: Database, enable_index_lookup: bool = True) -> None:
        self.database = database
        self.enable_index_lookup = enable_index_lookup
        self._evaluator = ExpressionEvaluator(subquery_callback=self._run_subquery)

    @property
    def evaluator(self) -> ExpressionEvaluator:
        """The engine's expression evaluator (subquery-aware).

        Exposed for the coordination component, which evaluates residual
        predicates of entangled queries against candidate valuations.
        """
        return self._evaluator

    # -- public API ------------------------------------------------------------------

    def execute(self, statement: ast.Statement | str) -> QueryResult:
        """Execute one statement (SQL text or a parsed AST node)."""
        if isinstance(statement, str):
            statement = parse_statement(statement)
        if isinstance(statement, ast.Select):
            return self._execute_select(statement)
        if isinstance(statement, ast.EntangledSelect):
            raise PlanError(
                "entangled queries must be submitted to the Youtopia system, "
                "not the plain query engine"
            )
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.DropTable):
            self.database.drop_table(statement.name, if_exists=statement.if_exists)
            return QueryResult(command="DROP TABLE")
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        raise PlanError(f"unsupported statement: {statement!r}")

    def query(self, sql: str) -> QueryResult:
        """Execute a SELECT given as text (convenience wrapper)."""
        return self.execute(sql)

    def explain(self, statement: ast.Select | str) -> str:
        """Return the optimized plan of a SELECT as indented text."""
        if isinstance(statement, str):
            statement = parse_statement(statement)  # type: ignore[assignment]
        if not isinstance(statement, ast.Select):
            raise PlanError("EXPLAIN is only supported for plain SELECT statements")
        plan = optimize(
            build_plan(statement, self.database), self.database, self.enable_index_lookup
        )
        return plan.explain()

    # -- SELECT ----------------------------------------------------------------------

    def _execute_select(
        self, select: ast.Select, outer_env: Optional[RowEnv] = None
    ) -> QueryResult:
        plan = optimize(
            build_plan(select, self.database), self.database, self.enable_index_lookup
        )
        columns = output_columns(select, self.database)
        context = PlanContext(self.database, self._evaluator, outer_env)
        rows: list[tuple[Any, ...]] = []
        for row in plan.rows(context):
            if any(isinstance(item.expression, ast.Star) for item in select.items):
                # Star output: keep the order computed by output_columns.
                rows.append(tuple(row.get(column) for column in columns))
            else:
                rows.append(tuple(row.get(column) for column in columns))
        return QueryResult(command="SELECT", columns=columns, rows=rows)

    def _run_subquery(
        self, select: ast.Select, outer_env: Optional[RowEnv]
    ) -> list[tuple[Any, ...]]:
        return self._execute_select(select, outer_env).rows

    def run_plan(self, plan: PlanNode, outer_env: Optional[RowEnv] = None) -> list[dict[str, Any]]:
        """Execute an already-built plan (used by the coordination grounding)."""
        context = PlanContext(self.database, self._evaluator, outer_env)
        return list(plan.rows(context))

    # -- DDL --------------------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTable) -> QueryResult:
        columns = tuple(
            Column(definition.name, ColumnType.from_name(definition.type_name), definition.nullable)
            for definition in statement.columns
        )
        schema = TableSchema(statement.name, columns, tuple(statement.primary_key))
        self.database.create_table(schema, if_not_exists=statement.if_not_exists)
        return QueryResult(command="CREATE TABLE")

    # -- DML --------------------------------------------------------------------------

    def _execute_insert(self, statement: ast.Insert) -> QueryResult:
        table = self.database.table(statement.table)
        schema = table.schema
        count = 0
        for row_exprs in statement.rows:
            values = [self._evaluator.evaluate(expr, RowEnv({})) for expr in row_exprs]
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise EvaluationError(
                        f"INSERT specifies {len(statement.columns)} columns "
                        f"but {len(values)} values"
                    )
                mapping = dict(zip(statement.columns, values))
                self.database.insert_mapping(statement.table, mapping)
            else:
                if len(values) != schema.arity:
                    raise EvaluationError(
                        f"INSERT into {schema.name!r} expects {schema.arity} values, "
                        f"got {len(values)}"
                    )
                self.database.insert(statement.table, values)
            count += 1
        return QueryResult(command="INSERT", affected=count)

    def _make_predicate(self, where: Optional[ast.Expression]):
        if where is None:
            return lambda row: True

        def predicate(row: dict[str, Any]) -> bool:
            env = RowEnv({key.lower(): value for key, value in row.items()})
            return self._evaluator.evaluate_predicate(where, env)

        return predicate

    def _execute_update(self, statement: ast.Update) -> QueryResult:
        assignments = statement.assignments

        def updater(row: dict[str, Any]) -> dict[str, Any]:
            env = RowEnv({key.lower(): value for key, value in row.items()})
            return {
                column: self._evaluator.evaluate(expression, env)
                for column, expression in assignments
            }

        affected = self.database.update_where(
            statement.table, self._make_predicate(statement.where), updater
        )
        return QueryResult(command="UPDATE", affected=affected)

    def _execute_delete(self, statement: ast.Delete) -> QueryResult:
        affected = self.database.delete_where(
            statement.table, self._make_predicate(statement.where)
        )
        return QueryResult(command="DELETE", affected=affected)


def run_script(engine: QueryEngine, sql: str) -> list[QueryResult]:
    """Execute a ``;``-separated script, returning one result per statement."""
    from repro.sqlparser import parse_script

    return [engine.execute(statement) for statement in parse_script(sql)]
