"""Translate SELECT ASTs into logical plans.

The planner is intentionally straightforward: FROM + JOIN clauses become a
left-deep tree of scans and nested-loop joins, WHERE becomes a filter,
aggregation/grouping becomes an AggregateNode, then DISTINCT, ORDER BY and
LIMIT wrap the result.  The rule-based optimizer (:mod:`repro.relalg.optimizer`)
improves on this shape afterwards.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.relalg import plan as planops
from repro.sqlparser import ast
from repro.sqlparser.pretty import format_expression
from repro.storage.database import Database


def _output_name(item: ast.SelectItem, position: int) -> str:
    """Choose the output column name for a SELECT item."""
    if item.alias:
        return item.alias
    expression = item.expression
    if isinstance(expression, ast.ColumnRef):
        return expression.name
    if isinstance(expression, ast.FunctionCall):
        return expression.name.lower()
    if isinstance(expression, ast.Star):
        return "*"
    return f"column{position + 1}"


def _validate_tables(select: ast.Select, database: Database) -> None:
    if select.from_table is not None and not database.has_table(select.from_table.name):
        # Let Database raise the canonical error type.
        database.table(select.from_table.name)
    for join in select.joins:
        if not database.has_table(join.table.name):
            database.table(join.table.name)


def build_plan(select: ast.Select, database: Database) -> planops.PlanNode:
    """Build an unoptimized logical plan for a plain SELECT."""
    _validate_tables(select, database)

    node: planops.PlanNode
    if select.from_table is None:
        node = planops.ValuesNode(({},))
    else:
        node = planops.ScanNode(select.from_table.name, select.from_table.binding)
        for join in select.joins:
            right = planops.ScanNode(join.table.name, join.table.binding)
            right_schema = database.schema(join.table.name)
            right_columns = tuple(
                f"{join.table.binding.lower()}.{column.lower()}"
                for column in right_schema.column_names
            )
            node = planops.JoinNode(
                left=node,
                right=right,
                condition=join.condition,
                kind=join.kind,
                right_columns=right_columns,
            )

    if select.where is not None:
        node = planops.FilterNode(node, select.where)

    output_names = tuple(_output_name(item, index) for index, item in enumerate(select.items))
    expressions = tuple(item.expression for item in select.items)

    has_aggregates = bool(select.group_by) or any(
        ast.contains_aggregate(expression) for expression in expressions
    )
    if select.having is not None and not has_aggregates:
        raise PlanError("HAVING requires GROUP BY or aggregate functions")

    if has_aggregates:
        for expression in expressions:
            if isinstance(expression, ast.Star):
                raise PlanError("'*' cannot be mixed with aggregation")
        node = planops.AggregateNode(
            child=node,
            group_by=select.group_by,
            output_names=output_names,
            expressions=expressions,
            having=select.having,
        )
    else:
        # ORDER BY may reference columns that are not in the SELECT list, so
        # keep the input columns around for the sort (unless DISTINCT, where
        # the output must be exactly the projected columns).
        passthrough = bool(select.order_by) and not select.distinct
        node = planops.ProjectNode(node, output_names, expressions, passthrough=passthrough)

    if select.distinct:
        node = planops.DistinctNode(node)

    if select.order_by:
        node = planops.SortNode(node, select.order_by)

    if select.limit is not None or select.offset is not None:
        node = planops.LimitNode(node, select.limit, select.offset or 0)

    return node


def output_columns(select: ast.Select, database: Database) -> list[str]:
    """The output column names a SELECT will produce (expanding ``*``)."""
    names: list[str] = []
    for index, item in enumerate(select.items):
        expression = item.expression
        if isinstance(expression, ast.Star):
            bindings: list[tuple[str, str]] = []
            if select.from_table is not None:
                bindings.append((select.from_table.binding, select.from_table.name))
            for join in select.joins:
                bindings.append((join.table.binding, join.table.name))
            if not bindings:
                raise PlanError("'*' requires a FROM clause")
            for binding, table_name in bindings:
                if expression.table and expression.table.lower() != binding.lower():
                    continue
                for column in database.schema(table_name).column_names:
                    names.append(column.lower())
        else:
            names.append(_output_name(item, index).lower())
    return names


def explain(select: ast.Select, database: Database) -> str:
    """Human-readable plan description (after optimization)."""
    from repro.relalg.optimizer import optimize

    node = optimize(build_plan(select, database), database)
    header = f"-- plan for: {format_expression if False else ''}"
    del header
    return node.explain()
