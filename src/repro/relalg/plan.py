"""Logical plan operators and their (pull-based) execution.

Plans are small trees of dataclass nodes.  Execution is iterator-style: each
node's :meth:`rows` method yields binding-qualified row dictionaries (see
:mod:`repro.relalg.rows`), except :class:`ProjectNode` / :class:`AggregateNode`
which yield output rows keyed by the final output column names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.errors import EvaluationError, PlanError
from repro.relalg.expressions import AGGREGATE_FUNCTIONS, ExpressionEvaluator
from repro.relalg.rows import RowEnv, bind_row, merge_rows
from repro.sqlparser import ast
from repro.storage.database import Database


@dataclass
class PlanContext:
    """Everything a plan needs at execution time."""

    database: Database
    evaluator: ExpressionEvaluator
    outer_env: Optional[RowEnv] = None

    def env(self, values: dict[str, Any]) -> RowEnv:
        if self.outer_env is not None:
            return self.outer_env.child(values)
        return RowEnv(values)


class PlanNode:
    """Base class of all plan operators."""

    def rows(self, context: PlanContext) -> Iterator[dict[str, Any]]:
        raise NotImplementedError

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def describe(self) -> str:
        """One-line description used by EXPLAIN-style output in the admin UI."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


@dataclass
class ScanNode(PlanNode):
    """Full scan of a base table under a binding name."""

    table_name: str
    binding: str

    def rows(self, context: PlanContext) -> Iterator[dict[str, Any]]:
        table = context.database.table(self.table_name)
        for row in table.scan():
            yield bind_row(self.binding, row)

    def describe(self) -> str:
        return f"Scan {self.table_name} AS {self.binding}"


@dataclass
class IndexLookupNode(PlanNode):
    """Equality lookup against a base table, using an index when available."""

    table_name: str
    binding: str
    column_values: dict[str, ast.Expression]

    def rows(self, context: PlanContext) -> Iterator[dict[str, Any]]:
        table = context.database.table(self.table_name)
        probe = {
            column: context.evaluator.evaluate(value_expr, context.env({}))
            for column, value_expr in self.column_values.items()
        }
        for row in table.lookup_equal(probe):
            yield bind_row(self.binding, row)

    def describe(self) -> str:
        columns = ", ".join(sorted(self.column_values))
        return f"IndexLookup {self.table_name} AS {self.binding} ON ({columns})"


@dataclass
class FilterNode(PlanNode):
    child: PlanNode
    predicate: ast.Expression

    def rows(self, context: PlanContext) -> Iterator[dict[str, Any]]:
        for row in self.child.rows(context):
            if context.evaluator.evaluate_predicate(self.predicate, context.env(row)):
                yield row

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        from repro.sqlparser.pretty import format_expression

        return f"Filter {format_expression(self.predicate)}"


@dataclass
class JoinNode(PlanNode):
    """Nested-loop join; ``kind`` is 'inner', 'left' or 'cross'."""

    left: PlanNode
    right: PlanNode
    condition: Optional[ast.Expression]
    kind: str = "inner"
    right_columns: tuple[str, ...] = field(default=())

    def rows(self, context: PlanContext) -> Iterator[dict[str, Any]]:
        right_rows = list(self.right.rows(context))
        for left_row in self.left.rows(context):
            matched = False
            for right_row in right_rows:
                combined = merge_rows(left_row, right_row)
                if self.condition is None or context.evaluator.evaluate_predicate(
                    self.condition, context.env(combined)
                ):
                    matched = True
                    yield combined
            if not matched and self.kind == "left":
                nulls = {column: None for column in self.right_columns}
                yield merge_rows(left_row, nulls)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"Join ({self.kind})"


@dataclass
class ProjectNode(PlanNode):
    """Evaluate the SELECT list for each input row.

    With ``passthrough`` enabled the input row's (binding-qualified) columns
    are kept alongside the computed outputs; the planner uses this so that a
    later ORDER BY may reference columns that are not part of the SELECT list,
    as SQL allows.  The engine only ever reads the declared output columns, so
    the extra keys never leak into results.
    """

    child: PlanNode
    output_names: tuple[str, ...]
    expressions: tuple[ast.Expression, ...]
    passthrough: bool = False

    def rows(self, context: PlanContext) -> Iterator[dict[str, Any]]:
        for row in self.child.rows(context):
            env = context.env(row)
            output: dict[str, Any] = dict(row) if self.passthrough else {}
            for name, expression in zip(self.output_names, self.expressions):
                if isinstance(expression, ast.Star):
                    output.update(_expand_star(expression, row))
                else:
                    output[name.lower()] = context.evaluator.evaluate(expression, env)
            yield output

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Project " + ", ".join(self.output_names)


def _expand_star(star: ast.Star, row: dict[str, Any]) -> dict[str, Any]:
    """Expand ``*`` / ``t.*`` against a binding-qualified row."""
    expanded: dict[str, Any] = {}
    wanted_prefix = f"{star.table.lower()}." if star.table else None
    for key, value in row.items():
        if "." not in key:
            if wanted_prefix is None:
                expanded[key] = value
            continue
        prefix, column = key.split(".", 1)
        if wanted_prefix is None or key.startswith(wanted_prefix):
            # Bare column name wins unless it collides; collisions keep the
            # qualified name so no data is silently dropped.
            if column in expanded:
                expanded[key] = value
            else:
                expanded[column] = value
    return expanded


@dataclass
class AggregateNode(PlanNode):
    """GROUP BY + aggregate evaluation (also handles global aggregates)."""

    child: PlanNode
    group_by: tuple[ast.Expression, ...]
    output_names: tuple[str, ...]
    expressions: tuple[ast.Expression, ...]
    having: Optional[ast.Expression] = None

    def rows(self, context: PlanContext) -> Iterator[dict[str, Any]]:
        groups: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
        order: list[tuple[Any, ...]] = []
        for row in self.child.rows(context):
            env = context.env(row)
            key = tuple(
                context.evaluator.evaluate(expression, env) for expression in self.group_by
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)

        if not groups and not self.group_by:
            # Global aggregate over an empty input still yields one row
            # (COUNT(*) = 0, SUM = NULL, ...).
            groups[()] = []
            order.append(())

        for key in order:
            group_rows = groups[key]
            representative = group_rows[0] if group_rows else {}
            if self.having is not None:
                having_value = _evaluate_with_aggregates(
                    self.having, group_rows, representative, context
                )
                if not having_value:
                    continue
            output: dict[str, Any] = {}
            for name, expression in zip(self.output_names, self.expressions):
                output[name.lower()] = _evaluate_with_aggregates(
                    expression, group_rows, representative, context
                )
            yield output

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Aggregate groups={len(self.group_by)}"


def _evaluate_with_aggregates(
    expression: ast.Expression,
    group_rows: list[dict[str, Any]],
    representative: dict[str, Any],
    context: PlanContext,
) -> Any:
    """Evaluate an expression that may contain aggregate function calls."""
    if isinstance(expression, ast.FunctionCall) and expression.name.upper() in AGGREGATE_FUNCTIONS:
        return _evaluate_aggregate(expression, group_rows, context)
    if isinstance(expression, ast.BinaryOp):
        left = _evaluate_with_aggregates(expression.left, group_rows, representative, context)
        right = _evaluate_with_aggregates(expression.right, group_rows, representative, context)
        return context.evaluator.evaluate(
            ast.BinaryOp(expression.operator, ast.Literal(left), ast.Literal(right)),
            context.env({}),
        )
    if isinstance(expression, ast.UnaryOp):
        operand = _evaluate_with_aggregates(expression.operand, group_rows, representative, context)
        return context.evaluator.evaluate(
            ast.UnaryOp(expression.operator, ast.Literal(operand)), context.env({})
        )
    return context.evaluator.evaluate(expression, context.env(representative))


def _evaluate_aggregate(
    call: ast.FunctionCall, group_rows: list[dict[str, Any]], context: PlanContext
) -> Any:
    name = call.name.upper()
    if name == "COUNT" and (not call.arguments or isinstance(call.arguments[0], ast.Star)):
        return len(group_rows)
    if not call.arguments:
        raise EvaluationError(f"aggregate {name} requires an argument")
    argument = call.arguments[0]
    values = []
    for row in group_rows:
        value = context.evaluator.evaluate(argument, context.env(row))
        if value is not None:
            values.append(value)
    if call.distinct:
        seen: list[Any] = []
        for value in values:
            if value not in seen:
                seen.append(value)
        values = seen
    if name == "COUNT":
        return len(values)
    if not values:
        return None
    if name == "SUM":
        return sum(values)
    if name == "AVG":
        return sum(values) / len(values)
    if name == "MIN":
        return min(values)
    if name == "MAX":
        return max(values)
    raise EvaluationError(f"unknown aggregate {name!r}")


@dataclass
class SortNode(PlanNode):
    child: PlanNode
    order_by: tuple[ast.OrderItem, ...]

    def rows(self, context: PlanContext) -> Iterator[dict[str, Any]]:
        materialized = list(self.child.rows(context))

        def sort_key(row: dict[str, Any]):
            key = []
            for item in self.order_by:
                value = context.evaluator.evaluate(item.expression, context.env(row))
                # None is treated as the smallest value: it sorts first in
                # ascending order and last in descending order.  The leading
                # flag keeps None from ever being compared against a value.
                is_null = value is None
                if item.descending:
                    key.append((1 if is_null else 0, _Reversed(value)))
                else:
                    key.append((0 if is_null else 1, _Forward(value)))
            return tuple(key)

        materialized.sort(key=sort_key)
        yield from materialized

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Sort keys={len(self.order_by)}"


class _Forward:
    """Comparable wrapper that tolerates None (treated as the minimum)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Forward") -> bool:
        if self.value is None:
            return other.value is not None
        if other.value is None:
            return False
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Forward) and self.value == other.value


class _Reversed(_Forward):
    """Comparable wrapper with reversed ordering for DESC sort keys."""

    def __lt__(self, other: "_Forward") -> bool:  # type: ignore[override]
        if self.value is None:
            return other.value is not None
        if other.value is None:
            return False
        return self.value > other.value


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    limit: Optional[int]
    offset: int = 0

    def rows(self, context: PlanContext) -> Iterator[dict[str, Any]]:
        produced = 0
        skipped = 0
        for row in self.child.rows(context):
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield row

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit {self.limit} offset {self.offset}"


@dataclass
class DistinctNode(PlanNode):
    child: PlanNode

    def rows(self, context: PlanContext) -> Iterator[dict[str, Any]]:
        seen: set[tuple[tuple[str, Any], ...]] = set()
        for row in self.child.rows(context):
            key = tuple(sorted(row.items(), key=lambda pair: pair[0]))
            try:
                hashable = key
                if hashable in seen:
                    continue
                seen.add(hashable)
            except TypeError as exc:  # pragma: no cover - defensive
                raise PlanError("DISTINCT over unhashable values") from exc
            yield row

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class ValuesNode(PlanNode):
    """A constant relation, used for SELECTs without a FROM clause."""

    rows_data: tuple[dict[str, Any], ...] = (({}),)

    def rows(self, context: PlanContext) -> Iterator[dict[str, Any]]:
        yield from (dict(row) for row in self.rows_data)

    def describe(self) -> str:
        return f"Values rows={len(self.rows_data)}"
