"""Relational query engine (the Youtopia "execution engine").

Public surface:

* :class:`~repro.relalg.engine.QueryEngine` and :class:`~repro.relalg.engine.QueryResult`
* :func:`~repro.relalg.engine.run_script`
* the plan operators in :mod:`repro.relalg.plan` and the optimizer in
  :mod:`repro.relalg.optimizer` (useful for the admin interface's EXPLAIN mode)
"""

from repro.relalg.engine import QueryEngine, QueryResult, run_script
from repro.relalg.expressions import ExpressionEvaluator
from repro.relalg.rows import RowEnv

__all__ = [
    "ExpressionEvaluator",
    "QueryEngine",
    "QueryResult",
    "RowEnv",
    "run_script",
]
