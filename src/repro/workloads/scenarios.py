"""Named demo scenarios (Section 3.1 of the paper) as runnable workloads.

Each function builds a fresh system with the travel schema/dataset, generates
the scenario's coordination requests, submits them, and returns a
:class:`ScenarioOutcome` that records whether everyone was answered and what
they were answered with.  The benchmark harness (``benchmarks/``) and the
integration tests both drive these functions, so the benchmarks measure
exactly the code path the demo exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.apps.travel.service import TravelService
from repro.core.coordinator import QueryStatus
from repro.core.system import YoutopiaSystem
from repro.workloads.generator import (
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadItem,
    WorkloadResult,
    build_loaded_system,
    run_workload,
)


@dataclass
class ScenarioOutcome:
    """The result of running one named scenario."""

    name: str
    result: WorkloadResult
    system: YoutopiaSystem
    service: TravelService
    answers: dict[str, list[tuple[Any, ...]]] = field(default_factory=dict)

    @property
    def coordinated(self) -> bool:
        """Whether every submitted request in the scenario was answered."""
        return self.result.all_answered

    def answer_relation(self, relation: str) -> list[tuple[Any, ...]]:
        return self.answers.get(relation, [])


def _collect_answers(system: YoutopiaSystem) -> dict[str, list[tuple[Any, ...]]]:
    return {name: system.answers(name) for name in system.answer_relations.names()}


def _run(name: str, items, system, service) -> ScenarioOutcome:
    result = run_workload(system, items)
    return ScenarioOutcome(
        name=name,
        result=result,
        system=system,
        service=service,
        answers=_collect_answers(system),
    )


def _fresh(seed: int, **system_kwargs) -> tuple[YoutopiaSystem, TravelService, WorkloadGenerator]:
    system, service, _friends = build_loaded_system(seed=seed, **system_kwargs)
    generator = WorkloadGenerator(service, WorkloadConfig(seed=seed))
    return system, service, generator


# ---------------------------------------------------------------------------
# E3 — Book a flight with a friend
# ---------------------------------------------------------------------------


def pair_flight(seed: int = 0, **system_kwargs) -> ScenarioOutcome:
    """Two friends coordinate a flight to the same destination (E3)."""
    system, service, generator = _fresh(seed, **system_kwargs)
    items = generator.pair_items(1, book_hotel=False)
    return _run("pair_flight", items, system, service)


# ---------------------------------------------------------------------------
# E4 — Book a flight and a hotel with a friend
# ---------------------------------------------------------------------------


def pair_flight_hotel(seed: int = 0, **system_kwargs) -> ScenarioOutcome:
    """Two friends coordinate flight *and* hotel in single entangled queries (E4)."""
    system, service, generator = _fresh(seed, **system_kwargs)
    items = generator.pair_items(1, book_hotel=True)
    return _run("pair_flight_hotel", items, system, service)


# ---------------------------------------------------------------------------
# E5 — Multiple simultaneous bookings
# ---------------------------------------------------------------------------


def many_pairs(num_pairs: int = 16, seed: int = 0, **system_kwargs) -> ScenarioOutcome:
    """Many independent pairs coordinating concurrently (E5)."""
    system, service, generator = _fresh(seed, **system_kwargs)
    items = generator.pair_items(num_pairs, book_hotel=False)
    generator.rng.shuffle(items)
    return _run(f"many_pairs[{num_pairs}]", items, system, service)


# ---------------------------------------------------------------------------
# E6 / E7 — Group bookings
# ---------------------------------------------------------------------------


def group_flight(group_size: int = 4, seed: int = 0, **system_kwargs) -> ScenarioOutcome:
    """A group of friends coordinates on one flight (E6; the demo uses 4)."""
    system, service, generator = _fresh(seed, **system_kwargs)
    items = generator.group_items(1, group_size, book_hotel=False)
    return _run(f"group_flight[{group_size}]", items, system, service)


def group_flight_hotel(group_size: int = 4, seed: int = 0, **system_kwargs) -> ScenarioOutcome:
    """A group coordinates on both the flight and the hotel (E7)."""
    system, service, generator = _fresh(seed, **system_kwargs)
    items = generator.group_items(1, group_size, book_hotel=True)
    return _run(f"group_flight_hotel[{group_size}]", items, system, service)


# ---------------------------------------------------------------------------
# E8 — Ad-hoc coordination structures
# ---------------------------------------------------------------------------


def adhoc_chain(length: int = 3, seed: int = 0, **system_kwargs) -> ScenarioOutcome:
    """A chain of overlapping pairwise constraints (E8, the Jerry/Kramer/Elaine case)."""
    system, service, generator = _fresh(seed, **system_kwargs)
    items = generator.adhoc_chain_items(length)
    return _run(f"adhoc_chain[{length}]", items, system, service)


# ---------------------------------------------------------------------------
# E10 — loaded system
# ---------------------------------------------------------------------------


def loaded_system(
    num_pairs: int = 100,
    num_unmatchable: int = 0,
    group_size: int = 0,
    num_groups: int = 0,
    seed: int = 0,
    **system_kwargs,
) -> ScenarioOutcome:
    """A loaded system with many entangled queries coordinating simultaneously (E10)."""
    system, service, _friends = build_loaded_system(seed=seed, **system_kwargs)
    config = WorkloadConfig(
        num_pairs=num_pairs,
        num_groups=num_groups,
        group_size=group_size or 4,
        num_unmatchable=num_unmatchable,
        shuffle_arrivals=True,
        seed=seed,
    )
    generator = WorkloadGenerator(service, config)
    items = generator.generate()
    return _run(f"loaded_system[pairs={num_pairs}]", items, system, service)


SCENARIOS: dict[str, Callable[..., ScenarioOutcome]] = {
    "pair_flight": pair_flight,
    "pair_flight_hotel": pair_flight_hotel,
    "many_pairs": many_pairs,
    "group_flight": group_flight,
    "group_flight_hotel": group_flight_hotel,
    "adhoc_chain": adhoc_chain,
    "loaded_system": loaded_system,
}
