"""Workload generation and named demo scenarios.

Public surface:

* :class:`~repro.workloads.generator.WorkloadConfig`, :class:`~repro.workloads.generator.WorkloadGenerator`
* :func:`~repro.workloads.generator.build_loaded_system`, :func:`~repro.workloads.generator.run_workload`
* the named scenarios in :data:`~repro.workloads.scenarios.SCENARIOS`
"""

from repro.workloads.generator import (
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadItem,
    WorkloadResult,
    build_loaded_system,
    run_workload,
)
from repro.workloads.scenarios import (
    SCENARIOS,
    ScenarioOutcome,
    adhoc_chain,
    group_flight,
    group_flight_hotel,
    loaded_system,
    many_pairs,
    pair_flight,
    pair_flight_hotel,
)

__all__ = [
    "SCENARIOS",
    "ScenarioOutcome",
    "WorkloadConfig",
    "WorkloadGenerator",
    "WorkloadItem",
    "WorkloadResult",
    "adhoc_chain",
    "build_loaded_system",
    "group_flight",
    "group_flight_hotel",
    "loaded_system",
    "many_pairs",
    "pair_flight",
    "pair_flight_hotel",
    "run_workload",
]
