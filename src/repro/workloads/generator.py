"""Workload generation for the scalability demonstrations and benchmarks.

The demo "allows our examples to be run on a loaded system, where a large
number of entangled queries are trying to coordinate simultaneously".  This
module generates such loads deterministically: collections of coordination
requests (pairs, groups, flight+hotel combinations, ad-hoc constraint chains)
over a synthetic travel database, plus a small runner that submits them in a
given arrival order and reports what happened.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.apps.travel.dataset import generate_dataset, install_and_load
from repro.apps.travel.models import TripRequest
from repro.apps.travel.service import TravelService
from repro.apps.travel.social import FriendGraph
from repro.core import ir
from repro.core.coordinator import QueryStatus
from repro.core.system import YoutopiaSystem


@dataclass(frozen=True)
class WorkloadItem:
    """One entangled query to submit, with its owner and compiled IR."""

    owner: str
    query: ir.EntangledQuery
    expected_group: tuple[str, ...] = ()


@dataclass
class WorkloadResult:
    """What happened when a workload was submitted to a system."""

    submitted: int = 0
    answered: int = 0
    pending: int = 0
    elapsed_seconds: float = 0.0
    statistics: dict[str, int] = field(default_factory=dict)

    @property
    def all_answered(self) -> bool:
        return self.submitted > 0 and self.answered == self.submitted


@dataclass
class WorkloadConfig:
    """Parameters of a generated coordination workload."""

    num_pairs: int = 0
    num_groups: int = 0
    group_size: int = 4
    flight_and_hotel_fraction: float = 0.0
    num_unmatchable: int = 0
    destinations: Optional[Sequence[str]] = None
    max_price_fraction: float = 1.0
    shuffle_arrivals: bool = True
    seed: int = 0


def build_loaded_system(
    num_flights: int = 120,
    num_hotels: int = 60,
    num_users: int = 512,
    seed: int = 0,
    **system_kwargs,
) -> tuple[YoutopiaSystem, TravelService, FriendGraph]:
    """A Youtopia instance with the travel schema, dataset and service installed."""
    system = YoutopiaSystem(seed=seed, **system_kwargs)
    dataset = generate_dataset(
        num_flights=num_flights, num_hotels=num_hotels, num_users=0, seed=seed
    )
    install_and_load(system, dataset)
    usernames = [f"user{i:04d}" for i in range(num_users)]
    users_table = system.database.table("Users")
    for username in usernames:
        users_table.insert((username, username.title(), "Ithaca"))
    friends = FriendGraph(usernames)
    # Friendships are added lazily by the generators for exactly the pairs and
    # groups that will coordinate; a ring keeps the graph connected.
    for index, username in enumerate(usernames):
        friends.add_friendship(username, usernames[(index + 1) % len(usernames)])
    service = TravelService(system, friends=friends, enforce_friendship=False)
    return system, service, friends


class WorkloadGenerator:
    """Generates lists of :class:`WorkloadItem` for a given travel service."""

    def __init__(self, service: TravelService, config: WorkloadConfig) -> None:
        self.service = service
        self.config = config
        self.rng = random.Random(config.seed)
        self._destinations = list(
            config.destinations
            or sorted(
                {
                    row[0]
                    for row in self.service.system.query("SELECT DISTINCT dest FROM Flights").rows
                }
            )
        )
        self._user_counter = 0

    # -- helpers -------------------------------------------------------------------------

    def _fresh_users(self, count: int) -> list[str]:
        users = [f"user{self._user_counter + offset:04d}" for offset in range(count)]
        self._user_counter += count
        return users

    def _destination(self) -> str:
        return self.rng.choice(self._destinations)

    def _trip_item(self, trip: TripRequest, expected_group: Sequence[str]) -> WorkloadItem:
        query = self.service.build_trip_query(trip)
        return WorkloadItem(owner=trip.user, query=query, expected_group=tuple(expected_group))

    # -- generators ------------------------------------------------------------------------

    def pair_items(self, num_pairs: int, book_hotel: bool = False) -> list[WorkloadItem]:
        """``num_pairs`` independent two-person coordinations (E5 / E10)."""
        items: list[WorkloadItem] = []
        for _ in range(num_pairs):
            left, right = self._fresh_users(2)
            dest = self._destination()
            for user, partner in ((left, right), (right, left)):
                trip = TripRequest(
                    user=user,
                    destination=dest,
                    flight_partners=(partner,),
                    hotel_partners=(partner,) if book_hotel else (),
                    book_hotel=book_hotel,
                )
                items.append(self._trip_item(trip, (left, right)))
        return items

    def group_items(
        self, num_groups: int, group_size: int, book_hotel: bool = False
    ) -> list[WorkloadItem]:
        """``num_groups`` coordinations of ``group_size`` friends each (E6/E7)."""
        items: list[WorkloadItem] = []
        for _ in range(num_groups):
            members = self._fresh_users(group_size)
            dest = self._destination()
            for member in members:
                companions = tuple(other for other in members if other != member)
                trip = TripRequest(
                    user=member,
                    destination=dest,
                    flight_partners=companions,
                    hotel_partners=companions if book_hotel else (),
                    book_hotel=book_hotel,
                )
                items.append(self._trip_item(trip, tuple(members)))
        return items

    def adhoc_chain_items(self, length: int) -> list[WorkloadItem]:
        """A chain of overlapping constraints (the "ad-hoc examples" of §3.1).

        User ``u_i`` coordinates flights with ``u_{i+1}``; every second user
        additionally coordinates the hotel with the next user, mirroring the
        Jerry–Kramer–Elaine example where different pairs coordinate on
        different subsets of the reservations.
        """
        users = self._fresh_users(length)
        dest = self._destination()
        items: list[WorkloadItem] = []
        for index, user in enumerate(users):
            flight_partners: list[str] = []
            hotel_partners: list[str] = []
            if index > 0:
                flight_partners.append(users[index - 1])
            if index + 1 < length:
                flight_partners.append(users[index + 1])
            if index % 2 == 0 and index + 1 < length:
                hotel_partners.append(users[index + 1])
            if index % 2 == 1:
                hotel_partners.append(users[index - 1])
            trip = TripRequest(
                user=user,
                destination=dest,
                flight_partners=tuple(flight_partners),
                hotel_partners=tuple(hotel_partners),
                book_hotel=bool(hotel_partners),
            )
            items.append(self._trip_item(trip, tuple(users)))
        return items

    def unmatchable_items(self, count: int) -> list[WorkloadItem]:
        """Queries whose partner never shows up — they stay pending (pool noise)."""
        items: list[WorkloadItem] = []
        for _ in range(count):
            (user,) = self._fresh_users(1)
            ghost = f"ghost-{user}"
            trip = TripRequest(user=user, destination=self._destination(), flight_partners=(ghost,))
            items.append(self._trip_item(trip, ()))
        return items

    def generate(self) -> list[WorkloadItem]:
        """Generate the full workload described by the configuration."""
        config = self.config
        items: list[WorkloadItem] = []
        if config.num_pairs:
            hotel_pairs = int(config.num_pairs * config.flight_and_hotel_fraction)
            items.extend(self.pair_items(config.num_pairs - hotel_pairs, book_hotel=False))
            items.extend(self.pair_items(hotel_pairs, book_hotel=True))
        if config.num_groups:
            items.extend(self.group_items(config.num_groups, config.group_size))
        if config.num_unmatchable:
            items.extend(self.unmatchable_items(config.num_unmatchable))
        if config.shuffle_arrivals:
            self.rng.shuffle(items)
        return items


def run_workload(
    system: YoutopiaSystem, items: Sequence[WorkloadItem], batch: bool = False
) -> WorkloadResult:
    """Submit every item (in order) and summarise the outcome.

    With ``batch=False`` items are submitted one at a time, each arrival
    triggering an inline match pass (the classic loop used by the demo
    scenarios).  With ``batch=True`` the whole workload goes through
    :meth:`~repro.core.system.YoutopiaSystem.submit_many`: one lock
    acquisition, one deferred match pass — the service layer's hot path.
    """
    result = WorkloadResult()
    started = time.perf_counter()
    if batch:
        requests = system.submit_many([item.query for item in items])
        result.submitted = len(requests)
    else:
        requests = []
        for item in items:
            requests.append(system.submit_entangled(item.query, owner=item.owner))
            result.submitted += 1
    result.elapsed_seconds = time.perf_counter() - started
    result.answered = sum(1 for request in requests if request.status is QueryStatus.ANSWERED)
    result.pending = sum(1 for request in requests if request.status is QueryStatus.PENDING)
    result.statistics = system.statistics()
    return result
