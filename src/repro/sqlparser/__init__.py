"""SQL and entangled-SQL front end.

Public surface:

* :func:`~repro.sqlparser.parser.parse_statement` / :func:`~repro.sqlparser.parser.parse_script`
* the AST node classes in :mod:`repro.sqlparser.ast`
* :func:`~repro.sqlparser.pretty.format_statement` / :func:`~repro.sqlparser.pretty.format_expression`
"""

from repro.sqlparser import ast
from repro.sqlparser.parser import parse_script, parse_statement
from repro.sqlparser.pretty import format_expression, format_statement
from repro.sqlparser.tokens import Token, TokenType, tokenize

__all__ = [
    "Token",
    "TokenType",
    "ast",
    "format_expression",
    "format_statement",
    "parse_script",
    "parse_statement",
    "tokenize",
]
