"""Tokenizer for the Youtopia SQL dialect.

The dialect is standard SQL plus the entangled-query extensions of the paper:
``INTO ANSWER``, ``IN ANSWER`` and ``CHOOSE``.  The tokenizer is a small
hand-rolled scanner that tracks line/column positions so parse errors point at
the offending token.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "INTO", "ANSWER",
    "CHOOSE", "AS", "JOIN", "INNER", "LEFT", "OUTER", "ON", "GROUP", "BY",
    "HAVING", "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "DISTINCT",
    "CREATE", "TABLE", "PRIMARY", "KEY", "DROP", "IF", "EXISTS",
    "INSERT", "VALUES", "UPDATE", "SET", "DELETE", "NULL", "TRUE", "FALSE",
    "IS", "BETWEEN", "LIKE", "NOT", "CROSS", "UNION", "ALL",
}


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    STRING = "STRING"
    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    OPERATOR = "OPERATOR"
    PUNCTUATION = "PUNCTUATION"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def is_punct(self, symbol: str) -> bool:
        return self.type is TokenType.PUNCTUATION and self.value == symbol

    def is_operator(self, *symbols: str) -> bool:
        return self.type is TokenType.OPERATOR and self.value in symbols

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.type.value}({self.value!r})"


_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "||")
_PUNCTUATION = "(),.;"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``, returning a token list terminated by an EOF token."""
    tokens: list[Token] = []
    position = 0
    line = 1
    column = 1
    length = len(text)

    def advance(count: int) -> None:
        nonlocal position, line, column
        for _ in range(count):
            if position < length and text[position] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            position += 1

    while position < length:
        char = text[position]

        # whitespace
        if char.isspace():
            advance(1)
            continue

        # comments: -- to end of line, /* ... */
        if text.startswith("--", position):
            end = text.find("\n", position)
            advance((end - position) if end != -1 else (length - position))
            continue
        if text.startswith("/*", position):
            end = text.find("*/", position + 2)
            if end == -1:
                raise ParseError("unterminated block comment", line, column)
            advance(end + 2 - position)
            continue

        start_line, start_column = line, column

        # string literal (single quotes, '' escapes a quote)
        if char == "'":
            value_chars: list[str] = []
            advance(1)
            while True:
                if position >= length:
                    raise ParseError("unterminated string literal", start_line, start_column)
                current = text[position]
                if current == "'":
                    if position + 1 < length and text[position + 1] == "'":
                        value_chars.append("'")
                        advance(2)
                        continue
                    advance(1)
                    break
                value_chars.append(current)
                advance(1)
            tokens.append(Token(TokenType.STRING, "".join(value_chars), start_line, start_column))
            continue

        # numbers
        if char.isdigit() or (char == "." and position + 1 < length and text[position + 1].isdigit()):
            number_chars: list[str] = []
            seen_dot = False
            while position < length and (text[position].isdigit() or (text[position] == "." and not seen_dot)):
                if text[position] == ".":
                    seen_dot = True
                number_chars.append(text[position])
                advance(1)
            value = "".join(number_chars)
            token_type = TokenType.FLOAT if seen_dot else TokenType.INTEGER
            tokens.append(Token(token_type, value, start_line, start_column))
            continue

        # identifiers and keywords
        if char.isalpha() or char == "_":
            ident_chars: list[str] = []
            while position < length and (text[position].isalnum() or text[position] == "_"):
                ident_chars.append(text[position])
                advance(1)
            word = "".join(ident_chars)
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), start_line, start_column))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start_line, start_column))
            continue

        # quoted identifiers ("name")
        if char == '"':
            ident_chars = []
            advance(1)
            while True:
                if position >= length:
                    raise ParseError("unterminated quoted identifier", start_line, start_column)
                current = text[position]
                if current == '"':
                    advance(1)
                    break
                ident_chars.append(current)
                advance(1)
            tokens.append(Token(TokenType.IDENTIFIER, "".join(ident_chars), start_line, start_column))
            continue

        # multi-character then single-character operators
        matched_operator = None
        for operator in _OPERATORS:
            if text.startswith(operator, position):
                matched_operator = operator
                break
        if matched_operator is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, start_line, start_column))
            advance(len(matched_operator))
            continue

        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, start_line, start_column))
            advance(1)
            continue

        raise ParseError(f"unexpected character {char!r}", start_line, start_column)

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
