"""Render AST nodes back to SQL text.

Used by the admin interface (to show pending entangled queries), by error
messages, and by the parser round-trip property tests.
"""

from __future__ import annotations

from repro.sqlparser import ast


def format_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value) if isinstance(value, float) else str(value)


def format_expression(expression: ast.Expression) -> str:
    """Render an expression as SQL text (fully parenthesised where needed)."""
    if isinstance(expression, ast.Literal):
        return format_literal(expression.value)
    if isinstance(expression, ast.ColumnRef):
        return expression.qualified
    if isinstance(expression, ast.Star):
        return f"{expression.table}.*" if expression.table else "*"
    if isinstance(expression, ast.UnaryOp):
        operand = format_expression(expression.operand)
        if expression.operator == "NOT":
            return f"(NOT {operand})"
        # Parenthesise unary minus so "- -x" never collapses into a "--" comment.
        return f"({expression.operator}{operand})"
    if isinstance(expression, ast.BinaryOp):
        left = format_expression(expression.left)
        right = format_expression(expression.right)
        # Always parenthesise so that nested comparisons ("(a = b) = c") and
        # mixed precedence round-trip through the parser unambiguously.
        return f"({left} {expression.operator} {right})"
    if isinstance(expression, ast.FunctionCall):
        arguments = ", ".join(format_expression(a) for a in expression.arguments)
        distinct = "DISTINCT " if expression.distinct else ""
        return f"{expression.name}({distinct}{arguments})"
    if isinstance(expression, ast.TupleExpr):
        return "(" + ", ".join(format_expression(i) for i in expression.items) + ")"
    # Predicate forms below are wrapped in parentheses so they can be embedded
    # in any surrounding context (e.g. as an operand of arithmetic or of
    # another predicate) and still reparse to the same tree.
    if isinstance(expression, ast.IsNull):
        keyword = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"({format_expression(expression.operand)} {keyword})"
    if isinstance(expression, ast.Between):
        keyword = "NOT BETWEEN" if expression.negated else "BETWEEN"
        return (
            f"({format_expression(expression.operand)} {keyword} "
            f"{format_expression(expression.low)} AND {format_expression(expression.high)})"
        )
    if isinstance(expression, ast.Like):
        keyword = "NOT LIKE" if expression.negated else "LIKE"
        return f"({format_expression(expression.operand)} {keyword} {format_expression(expression.pattern)})"
    if isinstance(expression, ast.InList):
        keyword = "NOT IN" if expression.negated else "IN"
        items = ", ".join(format_expression(i) for i in expression.items)
        return f"({format_expression(expression.operand)} {keyword} ({items}))"
    if isinstance(expression, ast.InSubquery):
        keyword = "NOT IN" if expression.negated else "IN"
        return f"({format_expression(expression.operand)} {keyword} ({format_statement(expression.subquery)}))"
    if isinstance(expression, ast.AnswerMembership):
        keyword = "NOT IN ANSWER" if expression.negated else "IN ANSWER"
        if len(expression.items) == 1:
            left = format_expression(expression.items[0])
        else:
            left = "(" + ", ".join(format_expression(i) for i in expression.items) + ")"
        return f"({left} {keyword} {expression.relation})"
    raise TypeError(f"cannot format expression node: {expression!r}")


def _format_from(from_table: ast.TableRef | None, joins: tuple[ast.Join, ...]) -> list[str]:
    parts: list[str] = []
    if from_table is not None:
        clause = from_table.name
        if from_table.alias:
            clause += f" AS {from_table.alias}"
        parts.append(f"FROM {clause}")
        for join in joins:
            table = join.table.name
            if join.table.alias:
                table += f" AS {join.table.alias}"
            if join.kind == "cross":
                parts.append(f"CROSS JOIN {table}")
            else:
                keyword = "LEFT JOIN" if join.kind == "left" else "JOIN"
                parts.append(f"{keyword} {table} ON {format_expression(join.condition)}")
    return parts


def format_statement(statement: ast.Statement) -> str:
    """Render any statement node back to a single-line SQL string."""
    if isinstance(statement, ast.Select):
        items = []
        for item in statement.items:
            rendered = format_expression(item.expression)
            if item.alias:
                rendered += f" AS {item.alias}"
            items.append(rendered)
        parts = ["SELECT " + ("DISTINCT " if statement.distinct else "") + ", ".join(items)]
        parts.extend(_format_from(statement.from_table, statement.joins))
        if statement.where is not None:
            parts.append(f"WHERE {format_expression(statement.where)}")
        if statement.group_by:
            parts.append("GROUP BY " + ", ".join(format_expression(e) for e in statement.group_by))
        if statement.having is not None:
            parts.append(f"HAVING {format_expression(statement.having)}")
        if statement.order_by:
            rendered_order = [
                format_expression(item.expression) + (" DESC" if item.descending else "")
                for item in statement.order_by
            ]
            parts.append("ORDER BY " + ", ".join(rendered_order))
        if statement.limit is not None:
            parts.append(f"LIMIT {statement.limit}")
            if statement.offset is not None:
                parts.append(f"OFFSET {statement.offset}")
        return " ".join(parts)

    if isinstance(statement, ast.EntangledSelect):
        head_parts = []
        for head in statement.heads:
            rendered_items = ", ".join(format_expression(i) for i in head.items)
            head_parts.append(f"{rendered_items} INTO ANSWER {head.relation}")
        parts = ["SELECT " + ", ".join(head_parts)]
        parts.extend(_format_from(statement.from_table, statement.joins))
        if statement.where is not None:
            parts.append(f"WHERE {format_expression(statement.where)}")
        parts.append(f"CHOOSE {statement.choose}")
        return " ".join(parts)

    if isinstance(statement, ast.CreateTable):
        column_parts = []
        for column in statement.columns:
            clause = f"{column.name} {column.type_name}"
            if not column.nullable:
                clause += " NOT NULL"
            column_parts.append(clause)
        if statement.primary_key:
            column_parts.append("PRIMARY KEY (" + ", ".join(statement.primary_key) + ")")
        exists = "IF NOT EXISTS " if statement.if_not_exists else ""
        return f"CREATE TABLE {exists}{statement.name} (" + ", ".join(column_parts) + ")"

    if isinstance(statement, ast.DropTable):
        exists = "IF EXISTS " if statement.if_exists else ""
        return f"DROP TABLE {exists}{statement.name}"

    if isinstance(statement, ast.Insert):
        columns = f" ({', '.join(statement.columns)})" if statement.columns else ""
        rows = ", ".join(
            "(" + ", ".join(format_expression(value) for value in row) + ")"
            for row in statement.rows
        )
        return f"INSERT INTO {statement.table}{columns} VALUES {rows}"

    if isinstance(statement, ast.Update):
        assignments = ", ".join(
            f"{column} = {format_expression(value)}" for column, value in statement.assignments
        )
        where = f" WHERE {format_expression(statement.where)}" if statement.where is not None else ""
        return f"UPDATE {statement.table} SET {assignments}{where}"

    if isinstance(statement, ast.Delete):
        where = f" WHERE {format_expression(statement.where)}" if statement.where is not None else ""
        return f"DELETE FROM {statement.table}{where}"

    raise TypeError(f"cannot format statement node: {statement!r}")
