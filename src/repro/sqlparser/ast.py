"""Abstract syntax tree for the Youtopia SQL dialect.

The AST is split into *expressions* (scalar-valued, used in SELECT lists and
WHERE clauses) and *statements* (top-level commands).  Entangled queries are
represented by :class:`EntangledSelect`, which is an ordinary select extended
with one or more :class:`AnswerHead` clauses (``... INTO ANSWER tbl``),
answer-membership conditions in the WHERE clause (:class:`AnswerMembership`)
and a ``CHOOSE k`` bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class of all expression nodes."""

    def children(self) -> tuple["Expression", ...]:
        """Direct sub-expressions (used by generic AST walks)."""
        return ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: string, int, float, bool or NULL (``value is None``)."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A possibly-qualified column reference (``fno`` or ``f.fno``)."""

    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``t.*`` in a SELECT list."""

    table: Optional[str] = None


@dataclass(frozen=True)
class UnaryOp(Expression):
    """``-expr`` or ``NOT expr``."""

    operator: str
    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic, comparison or logical binary operation."""

    operator: str
    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A (possibly aggregate) function call such as ``COUNT(*)`` or ``LOWER(x)``."""

    name: str
    arguments: tuple[Expression, ...]
    distinct: bool = False

    def children(self) -> tuple[Expression, ...]:
        return self.arguments


@dataclass(frozen=True)
class TupleExpr(Expression):
    """A tuple of expressions, e.g. the left side of ``(a, b) IN ANSWER R``."""

    items: tuple[Expression, ...]

    def children(self) -> tuple[Expression, ...]:
        return self.items


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, self.low, self.high)


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, self.pattern)


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, *self.items)


@dataclass(frozen=True)
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expression
    subquery: "Select"
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class AnswerMembership(Expression):
    """The entangled coordination constraint ``(e1, ..., en) IN ANSWER R``.

    ``items`` are the component expressions (a single expression is treated as
    a 1-tuple).  ``negated`` supports the ``NOT IN ANSWER`` form, which the
    system accepts syntactically but rejects during compilation (the published
    semantics only uses positive constraints).
    """

    items: tuple[Expression, ...]
    relation: str
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return self.items


# ---------------------------------------------------------------------------
# Select statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One entry of a SELECT list: an expression plus an optional alias."""

    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause, with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    """An explicit join against ``table`` with an ON condition.

    ``kind`` is ``"inner"``, ``"left"`` or ``"cross"`` (cross joins have no
    condition).
    """

    table: TableRef
    condition: Optional[Expression]
    kind: str = "inner"


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class Select:
    """A plain (non-entangled) SELECT statement."""

    items: tuple[SelectItem, ...]
    from_table: Optional[TableRef] = None
    joins: tuple[Join, ...] = ()
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class AnswerHead:
    """One ``expr_list INTO ANSWER relation`` clause of an entangled query."""

    items: tuple[Expression, ...]
    relation: str


@dataclass(frozen=True)
class EntangledSelect:
    """An entangled query: heads, a WHERE clause, and a CHOOSE bound.

    The demo paper's example has exactly one head; multi-head queries (flight
    *and* hotel coordination in a single query, Section 3.1) simply list
    several ``INTO ANSWER`` clauses.
    """

    heads: tuple[AnswerHead, ...]
    where: Optional[Expression] = None
    choose: int = 1
    from_table: Optional[TableRef] = None
    joins: tuple[Join, ...] = ()


# ---------------------------------------------------------------------------
# DDL / DML statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDefinition:
    name: str
    type_name: str
    nullable: bool = True


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDefinition, ...]
    primary_key: tuple[str, ...] = ()
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expression, ...], ...]


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expression] = None


Statement = Union[
    Select,
    EntangledSelect,
    CreateTable,
    DropTable,
    Insert,
    Update,
    Delete,
]


def walk_expression(expression: Expression):
    """Yield ``expression`` and every nested sub-expression, pre-order."""
    yield expression
    for child in expression.children():
        yield from walk_expression(child)


def expression_column_refs(expression: Expression) -> list[ColumnRef]:
    """All column references appearing anywhere inside ``expression``."""
    return [node for node in walk_expression(expression) if isinstance(node, ColumnRef)]


def contains_aggregate(expression: Expression) -> bool:
    """Whether the expression contains an aggregate function call."""
    aggregates = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
    return any(
        isinstance(node, FunctionCall) and node.name.upper() in aggregates
        for node in walk_expression(expression)
    )
