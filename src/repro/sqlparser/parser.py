"""Recursive-descent parser for the Youtopia SQL dialect.

Entry points:

* :func:`parse_statement` — parse exactly one statement.
* :func:`parse_script` — parse a ``;``-separated sequence of statements.

Entangled queries follow the syntax of the demo paper::

    SELECT 'Kramer', fno INTO ANSWER Reservation
    WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris')
      AND ('Jerry', fno) IN ANSWER Reservation
    CHOOSE 1

Multi-head entangled queries (flight *and* hotel in one request) list several
``INTO ANSWER`` clauses::

    SELECT 'Jerry', fno INTO ANSWER FlightRes,
           'Jerry', hid INTO ANSWER HotelRes
    WHERE ...
    CHOOSE 1
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.sqlparser import ast
from repro.sqlparser.tokens import Token, TokenType, tokenize


class _Parser:
    """Stateful cursor over the token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- cursor helpers --------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._position += 1
        return token

    def error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self.current
        return ParseError(message, token.line, token.column)

    def expect_keyword(self, *names: str) -> Token:
        if self.current.is_keyword(*names):
            return self.advance()
        raise self.error(f"expected {' or '.join(names)}, found {self.current}")

    def expect_punct(self, symbol: str) -> Token:
        if self.current.is_punct(symbol):
            return self.advance()
        raise self.error(f"expected {symbol!r}, found {self.current}")

    def expect_identifier(self) -> str:
        if self.current.type is TokenType.IDENTIFIER:
            return self.advance().value
        # Allow non-reserved words used as identifiers in common positions.
        if self.current.type is TokenType.KEYWORD and self.current.value in ("KEY", "ANSWER"):
            return self.advance().value
        raise self.error(f"expected identifier, found {self.current}")

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def accept_punct(self, symbol: str) -> bool:
        if self.current.is_punct(symbol):
            self.advance()
            return True
        return False

    def at_end(self) -> bool:
        return self.current.type is TokenType.EOF

    # -- statements ---------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self.current
        if token.is_keyword("SELECT"):
            return self.parse_select_like()
        if token.is_keyword("CREATE"):
            return self.parse_create_table()
        if token.is_keyword("DROP"):
            return self.parse_drop_table()
        if token.is_keyword("INSERT"):
            return self.parse_insert()
        if token.is_keyword("UPDATE"):
            return self.parse_update()
        if token.is_keyword("DELETE"):
            return self.parse_delete()
        raise self.error(f"expected a statement, found {token}")

    # -- SELECT (plain and entangled) -----------------------------------------------

    def parse_select_like(self) -> ast.Statement:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")

        items: list[ast.SelectItem] = []
        heads: list[ast.AnswerHead] = []
        current_exprs: list[ast.Expression] = []
        entangled = False

        while True:
            expression = self.parse_expression()
            alias = None
            if self.accept_keyword("AS"):
                alias = self.expect_identifier()
            elif self.current.type is TokenType.IDENTIFIER and not entangled:
                # implicit alias only meaningful for plain selects
                alias = self.advance().value
            current_exprs.append(expression)
            items.append(ast.SelectItem(expression, alias))

            if self.current.is_keyword("INTO"):
                self.advance()
                self.expect_keyword("ANSWER")
                relation = self.expect_identifier()
                heads.append(ast.AnswerHead(tuple(current_exprs), relation))
                current_exprs = []
                entangled = True
                if self.accept_punct(","):
                    continue
                break

            if self.accept_punct(","):
                continue
            break

        if entangled and current_exprs:
            raise self.error("entangled SELECT has trailing expressions without INTO ANSWER")

        from_table: Optional[ast.TableRef] = None
        joins: list[ast.Join] = []
        if self.accept_keyword("FROM"):
            from_table = self.parse_table_ref()
            joins = self.parse_joins()

        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()

        if entangled:
            choose = 1
            if self.current.is_keyword("CHOOSE"):
                self.advance()
                choose_token = self.current
                if choose_token.type is not TokenType.INTEGER:
                    raise self.error("CHOOSE expects a positive integer")
                self.advance()
                choose = int(choose_token.value)
                if choose < 1:
                    raise self.error("CHOOSE expects a positive integer", choose_token)
            return ast.EntangledSelect(
                heads=tuple(heads),
                where=where,
                choose=choose,
                from_table=from_table,
                joins=tuple(joins),
            )

        group_by: list[ast.Expression] = []
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self.accept_punct(","):
                group_by.append(self.parse_expression())
        if self.accept_keyword("HAVING"):
            # HAVING without GROUP BY parses fine; the planner rejects it
            # unless aggregates are involved.
            having = self.parse_expression()

        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expression = self.parse_expression()
                descending = False
                if self.accept_keyword("DESC"):
                    descending = True
                else:
                    self.accept_keyword("ASC")
                order_by.append(ast.OrderItem(expression, descending))
                if not self.accept_punct(","):
                    break

        limit = None
        offset = None
        if self.accept_keyword("LIMIT"):
            limit_token = self.current
            if limit_token.type is not TokenType.INTEGER:
                raise self.error("LIMIT expects an integer")
            self.advance()
            limit = int(limit_token.value)
            if self.accept_keyword("OFFSET"):
                offset_token = self.current
                if offset_token.type is not TokenType.INTEGER:
                    raise self.error("OFFSET expects an integer")
                self.advance()
                offset = int(offset_token.value)

        return ast.Select(
            items=tuple(items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def parse_table_ref(self) -> ast.TableRef:
        name = self.expect_identifier()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return ast.TableRef(name, alias)

    def parse_joins(self) -> list[ast.Join]:
        joins: list[ast.Join] = []
        while True:
            kind = None
            if self.current.is_keyword("JOIN"):
                kind = "inner"
                self.advance()
            elif self.current.is_keyword("INNER"):
                self.advance()
                self.expect_keyword("JOIN")
                kind = "inner"
            elif self.current.is_keyword("LEFT"):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                kind = "left"
            elif self.current.is_keyword("CROSS"):
                self.advance()
                self.expect_keyword("JOIN")
                kind = "cross"
            elif self.current.is_punct(","):
                # implicit cross join: FROM a, b
                self.advance()
                kind = "cross"
            else:
                break
            table = self.parse_table_ref()
            condition = None
            if kind != "cross":
                self.expect_keyword("ON")
                condition = self.parse_expression()
            joins.append(ast.Join(table, condition, kind))
        return joins

    # -- DDL -------------------------------------------------------------------------

    def parse_create_table(self) -> ast.CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_identifier()
        self.expect_punct("(")
        columns: list[ast.ColumnDefinition] = []
        primary_key: tuple[str, ...] = ()
        while True:
            if self.current.is_keyword("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                self.expect_punct("(")
                key_columns = [self.expect_identifier()]
                while self.accept_punct(","):
                    key_columns.append(self.expect_identifier())
                self.expect_punct(")")
                primary_key = tuple(key_columns)
            else:
                column_name = self.expect_identifier()
                type_name = self.expect_identifier()
                nullable = True
                if self.accept_keyword("NOT"):
                    self.expect_keyword("NULL")
                    nullable = False
                elif self.accept_keyword("NULL"):
                    nullable = True
                if self.current.is_keyword("PRIMARY"):
                    self.advance()
                    self.expect_keyword("KEY")
                    primary_key = (column_name,)
                columns.append(ast.ColumnDefinition(column_name, type_name, nullable))
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return ast.CreateTable(name, tuple(columns), primary_key, if_not_exists)

    def parse_drop_table(self) -> ast.DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        name = self.expect_identifier()
        return ast.DropTable(name, if_exists)

    # -- DML -------------------------------------------------------------------------

    def parse_insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier()
        columns: tuple[str, ...] = ()
        if self.current.is_punct("("):
            self.advance()
            names = [self.expect_identifier()]
            while self.accept_punct(","):
                names.append(self.expect_identifier())
            self.expect_punct(")")
            columns = tuple(names)
        self.expect_keyword("VALUES")
        rows: list[tuple[ast.Expression, ...]] = []
        while True:
            self.expect_punct("(")
            values = [self.parse_expression()]
            while self.accept_punct(","):
                values.append(self.parse_expression())
            self.expect_punct(")")
            rows.append(tuple(values))
            if not self.accept_punct(","):
                break
        return ast.Insert(table, columns, tuple(rows))

    def parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier()
        self.expect_keyword("SET")
        assignments: list[tuple[str, ast.Expression]] = []
        while True:
            column = self.expect_identifier()
            if not self.current.is_operator("="):
                raise self.error("expected '=' in UPDATE assignment")
            self.advance()
            assignments.append((column, self.parse_expression()))
            if not self.accept_punct(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return ast.Update(table, tuple(assignments), where)

    def parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return ast.Delete(table, where)

    # -- expressions ---------------------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        return self.parse_or()

    def parse_or(self) -> ast.Expression:
        left = self.parse_and()
        while self.current.is_keyword("OR"):
            self.advance()
            right = self.parse_and()
            left = ast.BinaryOp("OR", left, right)
        return left

    def parse_and(self) -> ast.Expression:
        left = self.parse_not()
        while self.current.is_keyword("AND"):
            self.advance()
            right = self.parse_not()
            left = ast.BinaryOp("AND", left, right)
        return left

    def parse_not(self) -> ast.Expression:
        if self.current.is_keyword("NOT"):
            self.advance()
            return ast.UnaryOp("NOT", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> ast.Expression:
        left = self.parse_additive()

        negated = False
        if self.current.is_keyword("NOT") and self.peek().is_keyword("IN", "BETWEEN", "LIKE"):
            self.advance()
            negated = True

        if self.current.is_keyword("IS"):
            self.advance()
            is_negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated=is_negated)

        if self.current.is_keyword("BETWEEN"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return ast.Between(left, low, high, negated=negated)

        if self.current.is_keyword("LIKE"):
            self.advance()
            pattern = self.parse_additive()
            return ast.Like(left, pattern, negated=negated)

        if self.current.is_keyword("IN"):
            self.advance()
            return self.parse_in_tail(left, negated)

        if self.current.is_operator("=", "!=", "<>", "<", "<=", ">", ">="):
            operator = self.advance().value
            if operator == "<>":
                operator = "!="
            right = self.parse_additive()
            return ast.BinaryOp(operator, left, right)

        return left

    def parse_in_tail(self, left: ast.Expression, negated: bool) -> ast.Expression:
        """Parse the tail of ``left [NOT] IN ...`` (ANSWER, subquery, or list)."""
        if self.current.is_keyword("ANSWER"):
            self.advance()
            relation = self.expect_identifier()
            items = left.items if isinstance(left, ast.TupleExpr) else (left,)
            return ast.AnswerMembership(items, relation, negated=negated)

        self.expect_punct("(")
        if self.current.is_keyword("SELECT"):
            subquery = self.parse_select_like()
            if not isinstance(subquery, ast.Select):
                raise self.error("entangled queries cannot appear as subqueries")
            self.expect_punct(")")
            return ast.InSubquery(left, subquery, negated=negated)

        items = [self.parse_expression()]
        while self.accept_punct(","):
            items.append(self.parse_expression())
        self.expect_punct(")")
        return ast.InList(left, tuple(items), negated=negated)

    def parse_additive(self) -> ast.Expression:
        left = self.parse_multiplicative()
        while self.current.is_operator("+", "-", "||"):
            operator = self.advance().value
            right = self.parse_multiplicative()
            left = ast.BinaryOp(operator, left, right)
        return left

    def parse_multiplicative(self) -> ast.Expression:
        left = self.parse_unary()
        while self.current.is_operator("*", "/", "%"):
            operator = self.advance().value
            right = self.parse_unary()
            left = ast.BinaryOp(operator, left, right)
        return left

    def parse_unary(self) -> ast.Expression:
        if self.current.is_operator("-"):
            self.advance()
            operand = self.parse_unary()
            # Fold "-<number>" into a negative literal so that negative
            # constants round-trip through the pretty-printer unchanged.
            if isinstance(operand, ast.Literal) and isinstance(operand.value, (int, float)) \
                    and not isinstance(operand.value, bool):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self.current.is_operator("+"):
            self.advance()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> ast.Expression:
        token = self.current

        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.type is TokenType.INTEGER:
            self.advance()
            return ast.Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self.advance()
            return ast.Literal(float(token.value))
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)

        if token.is_operator("*"):
            self.advance()
            return ast.Star()

        if token.is_punct("("):
            self.advance()
            first = self.parse_expression()
            if self.current.is_punct(","):
                items = [first]
                while self.accept_punct(","):
                    items.append(self.parse_expression())
                self.expect_punct(")")
                return ast.TupleExpr(tuple(items))
            self.expect_punct(")")
            return first

        if token.type is TokenType.IDENTIFIER or token.is_keyword("ANSWER", "KEY"):
            name = self.advance().value
            # function call
            if self.current.is_punct("("):
                self.advance()
                distinct = self.accept_keyword("DISTINCT")
                arguments: list[ast.Expression] = []
                if not self.current.is_punct(")"):
                    arguments.append(self.parse_expression())
                    while self.accept_punct(","):
                        arguments.append(self.parse_expression())
                self.expect_punct(")")
                return ast.FunctionCall(name.upper(), tuple(arguments), distinct)
            # qualified reference: table.column or table.*
            if self.current.is_punct("."):
                self.advance()
                if self.current.is_operator("*"):
                    self.advance()
                    return ast.Star(table=name)
                column = self.expect_identifier()
                return ast.ColumnRef(column, table=name)
            return ast.ColumnRef(name)

        raise self.error(f"unexpected token {token}")


def parse_statement(text: str) -> ast.Statement:
    """Parse a single SQL statement (an optional trailing ``;`` is allowed)."""
    parser = _Parser(tokenize(text))
    statement = parser.parse_statement()
    parser.accept_punct(";")
    if not parser.at_end():
        raise parser.error(f"unexpected trailing input: {parser.current}")
    return statement


def parse_script(text: str) -> list[ast.Statement]:
    """Parse a ``;``-separated sequence of statements."""
    parser = _Parser(tokenize(text))
    statements: list[ast.Statement] = []
    while not parser.at_end():
        statements.append(parser.parse_statement())
        while parser.accept_punct(";"):
            pass
    return statements
