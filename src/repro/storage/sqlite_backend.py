"""SQLite persistence for the in-memory catalog.

The Youtopia demo ran against a conventional persistent DBMS.  This module
provides the closest laptop-scale equivalent: the working set stays in the
in-memory :class:`~repro.storage.database.Database` (which is what the
relational engine and the coordination component operate on), and a
:class:`SQLiteMirror` keeps an on-disk SQLite database in sync so state
survives process restarts and can be inspected with standard tools.

The mirror is deliberately write-through and coarse-grained: after any change
to a table it rewrites that table's rows inside a single SQLite transaction.
For the dataset sizes of the demo scenarios and benchmarks this is more than
fast enough, and it keeps the durability story simple and auditable.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Any

from repro.errors import StorageError
from repro.storage.database import Database
from repro.storage.schema import Column, ColumnType, TableSchema

_SQLITE_TYPES = {
    ColumnType.INTEGER: "INTEGER",
    ColumnType.REAL: "REAL",
    ColumnType.TEXT: "TEXT",
    ColumnType.BOOLEAN: "INTEGER",
    # SQLite columns with an empty type name have "BLOB" (none) affinity,
    # which is exactly what the dynamically-typed ANY columns need.
    ColumnType.ANY: "",
}


def _quote_identifier(name: str) -> str:
    """Quote an identifier for SQLite, refusing anything that needs escaping."""
    if '"' in name:
        raise StorageError(f"identifier {name!r} cannot be used with the SQLite mirror")
    return f'"{name}"'


def _create_table_sql(schema: TableSchema) -> str:
    column_clauses = []
    for column in schema.columns:
        clause = f"{_quote_identifier(column.name)} {_SQLITE_TYPES[column.type]}"
        if not column.nullable:
            clause += " NOT NULL"
        column_clauses.append(clause)
    if schema.primary_key:
        key_columns = ", ".join(_quote_identifier(name) for name in schema.primary_key)
        column_clauses.append(f"PRIMARY KEY ({key_columns})")
    return (
        f"CREATE TABLE IF NOT EXISTS {_quote_identifier(schema.name)} "
        f"({', '.join(column_clauses)})"
    )


def _encode_value(column: Column, value: Any) -> Any:
    if value is None:
        return None
    if column.type is ColumnType.BOOLEAN:
        return int(value)
    return value


def _decode_value(column: Column, value: Any) -> Any:
    if value is None:
        return None
    if column.type is ColumnType.BOOLEAN:
        return bool(value)
    if column.type is ColumnType.REAL:
        return float(value)
    return value


#: ``SystemConfig.fsync_policy`` → SQLite ``PRAGMA synchronous`` level, so a
#: mirror attached next to the coordination WAL batches its fsyncs with the
#: same discipline (``always`` = FULL, ``batch`` = NORMAL, ``never`` = OFF).
_SYNCHRONOUS_LEVELS = {"always": "FULL", "batch": "NORMAL", "never": "OFF"}


class SQLiteMirror:
    """Write-through mirror of a :class:`Database` into a SQLite file."""

    def __init__(
        self, database: Database, path: str | Path, fsync_policy: str = "always"
    ) -> None:
        if fsync_policy not in _SYNCHRONOUS_LEVELS:
            raise StorageError(
                f"unknown fsync policy {fsync_policy!r}; "
                f"expected one of {tuple(_SYNCHRONOUS_LEVELS)}"
            )
        self.database = database
        self.path = str(path)
        self.fsync_policy = fsync_policy
        self._connection = sqlite3.connect(self.path)
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute(
            f"PRAGMA synchronous={_SYNCHRONOUS_LEVELS[fsync_policy]}"
        )
        self._attached = False

    # -- lifecycle ---------------------------------------------------------------

    def attach(self) -> None:
        """Start mirroring: push current state and subscribe to changes."""
        if self._attached:
            return
        for table in self.database.tables():
            self._sync_table(table.name)
        self.database.add_listener(self._on_change)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        self.database.remove_listener(self._on_change)
        self._attached = False

    def close(self) -> None:
        self.detach()
        self._connection.close()

    def __enter__(self) -> "SQLiteMirror":
        self.attach()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- mirroring ----------------------------------------------------------------

    def _on_change(self, table_name: str, kind: str) -> None:
        if kind == "drop":
            with self._connection:
                self._connection.execute(
                    f"DROP TABLE IF EXISTS {_quote_identifier(table_name)}"
                )
            return
        self._sync_table(table_name)

    def _sync_table(self, table_name: str) -> None:
        table = self.database.table(table_name)
        schema = table.schema
        placeholders = ", ".join("?" for _ in schema.columns)
        with self._connection:
            self._connection.execute(_create_table_sql(schema))
            self._connection.execute(f"DELETE FROM {_quote_identifier(schema.name)}")
            rows = [
                tuple(
                    _encode_value(column, value)
                    for column, value in zip(schema.columns, row)
                )
                for row in table.rows()
            ]
            if rows:
                self._connection.executemany(
                    f"INSERT INTO {_quote_identifier(schema.name)} VALUES ({placeholders})",
                    rows,
                )

    # -- recovery ------------------------------------------------------------------

    def load_into(self, table_name: str) -> int:
        """Load persisted rows of ``table_name`` into the in-memory table.

        The in-memory table must already exist (schemas are owned by the
        catalog, not by the mirror).  Returns the number of rows loaded.
        """
        table = self.database.table(table_name)
        schema = table.schema
        cursor = self._connection.execute(
            f"SELECT * FROM {_quote_identifier(schema.name)}"
        )
        count = 0
        for raw in cursor.fetchall():
            decoded = tuple(
                _decode_value(column, value)
                for column, value in zip(schema.columns, raw)
            )
            table.insert(decoded)
            count += 1
        return count

    def persisted_tables(self) -> list[str]:
        cursor = self._connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
        )
        return [row[0] for row in cursor.fetchall()]

    def persisted_row_count(self, table_name: str) -> int:
        cursor = self._connection.execute(
            f"SELECT COUNT(*) FROM {_quote_identifier(table_name)}"
        )
        return int(cursor.fetchone()[0])
