"""Hash indexes over in-memory tables.

The coordination component repeatedly probes base tables by equality (e.g.
"all flights with ``dest = 'Paris'``") and probes the pending-query pool by
(relation, constant-position) keys, so the storage engine offers simple
unique and non-unique hash indexes.  An index maps a key — the tuple of the
indexed column values — to the set of row ids currently carrying that key.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import ConstraintViolationError


class HashIndex:
    """A (possibly unique) hash index over a subset of a table's columns."""

    def __init__(self, name: str, column_positions: Sequence[int], unique: bool = False) -> None:
        if not column_positions:
            raise ValueError("an index needs at least one column")
        self.name = name
        self.column_positions = tuple(column_positions)
        self.unique = unique
        self._buckets: dict[tuple[Any, ...], set[int]] = defaultdict(set)

    # -- key handling ---------------------------------------------------------

    def key_for_row(self, row: Sequence[Any]) -> tuple[Any, ...]:
        return tuple(row[position] for position in self.column_positions)

    # -- maintenance ----------------------------------------------------------

    def add(self, row_id: int, row: Sequence[Any]) -> None:
        key = self.key_for_row(row)
        bucket = self._buckets[key]
        if self.unique and bucket and row_id not in bucket:
            raise ConstraintViolationError(
                f"unique index {self.name!r} violated for key {key!r}"
            )
        bucket.add(row_id)

    def remove(self, row_id: int, row: Sequence[Any]) -> None:
        key = self.key_for_row(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(row_id)
        if not bucket:
            del self._buckets[key]

    def clear(self) -> None:
        self._buckets.clear()

    def rebuild(self, rows: Iterable[tuple[int, Sequence[Any]]]) -> None:
        """Rebuild from scratch from ``(row_id, row)`` pairs."""
        self.clear()
        for row_id, row in rows:
            self.add(row_id, row)

    # -- probing ---------------------------------------------------------------

    def lookup(self, key: Sequence[Any]) -> frozenset[int]:
        """Row ids whose indexed columns equal ``key`` (may be empty)."""
        return frozenset(self._buckets.get(tuple(key), frozenset()))

    def contains_key(self, key: Sequence[Any]) -> bool:
        return tuple(key) in self._buckets

    def keys(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._buckets.keys())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "unique" if self.unique else "non-unique"
        return f"HashIndex({self.name!r}, columns={self.column_positions}, {kind}, keys={len(self._buckets)})"
