"""CSV import/export for tables.

Used by the example scripts and the admin interface to move small datasets
(flight schedules, hotel inventories) in and out of the system.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.errors import StorageError
from repro.storage.schema import ColumnType, TableSchema
from repro.storage.table import Table


def _parse_cell(column_type: ColumnType, text: str) -> Any:
    if text == "":
        return None
    if column_type is ColumnType.ANY:
        for parser in (int, float):
            try:
                return parser(text)
            except ValueError:
                continue
        return text
    if column_type is ColumnType.INTEGER:
        return int(text)
    if column_type is ColumnType.REAL:
        return float(text)
    if column_type is ColumnType.BOOLEAN:
        lowered = text.strip().lower()
        if lowered in ("1", "true", "t", "yes"):
            return True
        if lowered in ("0", "false", "f", "no"):
            return False
        raise StorageError(f"cannot parse boolean from {text!r}")
    return text


def export_table(table: Table, path: str | Path) -> int:
    """Write ``table`` to ``path`` as CSV with a header row.  Returns row count."""
    schema = table.schema
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(schema.column_names)
        count = 0
        for row in table.rows():
            writer.writerow(["" if value is None else value for value in row])
            count += 1
    return count


def import_table(table: Table, path: str | Path) -> int:
    """Append rows from a CSV file (with header) into ``table``.

    The header must name a subset of the table's columns; missing columns are
    filled with ``None``.  Returns the number of rows inserted.
    """
    schema: TableSchema = table.schema
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return 0
        for name in header:
            if not schema.has_column(name):
                raise StorageError(
                    f"CSV column {name!r} does not exist in table {schema.name!r}"
                )
        types = [schema.column(name).type for name in header]
        count = 0
        for cells in reader:
            if len(cells) != len(header):
                raise StorageError(
                    f"CSV row has {len(cells)} cells, expected {len(header)}"
                )
            mapping = {
                name: _parse_cell(column_type, cell)
                for name, column_type, cell in zip(header, types, cells)
            }
            table.insert_mapping(mapping)
            count += 1
    return count
