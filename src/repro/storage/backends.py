"""Pluggable storage backends for the tiered pending pool.

The tiered pool (:mod:`repro.core.tiering`) evicts cold pending queries out
of shard memory into a *pending store*: a tiny durable key/value table
mapping ``query_id`` to a JSON payload from which the query can be recompiled
on page-in.  This module defines the backend contract plus the two built-in
implementations, and a registry so alternative stores (a Postgres table, a
remote KV service) drop in without touching the coordinator:

* :class:`PendingStoreBackend` — the protocol every backend satisfies.
* :class:`SQLitePendingStore` — the default: one stdlib-``sqlite3`` table,
  batched commits, ``sync()`` as the durability barrier the checkpoint uses.
* :class:`MemoryPendingStore` — a dict; proves the protocol is the only
  coupling and gives tests a zero-IO backend.
* :func:`register_backend` / :func:`create_backend` — the scheme registry
  (``"sqlite"``, ``"memory"``, yours).

Durability contract (shared with :mod:`repro.core.durability`): a payload
handed to :meth:`PendingStoreBackend.put` must survive a process crash once
:meth:`PendingStoreBackend.sync` has returned.  The coordinator calls
``sync()`` while cutting a snapshot, *before* the snapshot file is written,
so a snapshot that references a cold entry can always resolve it on
recovery.  ``delete`` of an absent key is a no-op — page-in intentionally
leaves the stored payload behind (see the tiering module) and removal only
happens when a query leaves the pending pool for good.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Any, Callable, Optional, Protocol, Union, runtime_checkable

from repro.errors import StorageError

#: File name of the default SQLite pending store inside a ``data_dir``.
COLD_STORE_FILE = "cold_store.db"

#: Sidecar files SQLite may create next to the store (wiped with it on a
#: provably-failed bootstrap, see ``repro.apps.cli``).
COLD_STORE_SIDECARS = (COLD_STORE_FILE + "-journal", COLD_STORE_FILE + "-wal",
                      COLD_STORE_FILE + "-shm")


@runtime_checkable
class PendingStoreBackend(Protocol):
    """The contract a cold store must satisfy.

    Implementations must be thread-safe: eviction and page-in run under
    different shard locks concurrently, and the checkpoint's ``sync()`` call
    can race either.  Keys are globally unique query ids, values are opaque
    JSON strings produced by the tiering layer.
    """

    def put(self, query_id: str, payload: str) -> None:
        """Insert or replace one payload (durable only after ``sync()``)."""
        ...

    def get(self, query_id: str) -> Optional[str]:
        """The stored payload, or ``None`` when the key is absent."""
        ...

    def delete(self, query_id: str) -> None:
        """Remove one entry; absent keys are a no-op."""
        ...

    def keys(self) -> list[str]:
        """Every stored query id (recovery diagnostics, tests)."""
        ...

    def __len__(self) -> int:
        ...

    def sync(self) -> None:
        """Durability barrier: everything ``put`` so far survives a crash."""
        ...

    def close(self) -> None:
        """Flush and release resources (idempotent)."""
        ...

    def describe(self) -> str:
        """A short human-readable identity for stats/admin output."""
        ...


class MemoryPendingStore:
    """A process-local dict backend.

    Useful for tests and for memory-only systems (no ``data_dir``): the
    tiering machinery, eviction accounting and page-in path are identical,
    only crash durability is absent — which such systems never promised.
    """

    def __init__(self) -> None:
        self._entries: dict[str, str] = {}
        self._lock = threading.Lock()

    def put(self, query_id: str, payload: str) -> None:
        with self._lock:
            self._entries[query_id] = payload

    def get(self, query_id: str) -> Optional[str]:
        with self._lock:
            return self._entries.get(query_id)

    def delete(self, query_id: str) -> None:
        with self._lock:
            self._entries.pop(query_id, None)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def sync(self) -> None:
        pass

    def close(self) -> None:
        with self._lock:
            self._entries.clear()

    def describe(self) -> str:
        return "memory"


class SQLitePendingStore:
    """The default cold store: one ``pending_spill`` table in SQLite.

    * ``INSERT OR REPLACE`` semantics, so re-evicting a paged-in query
      overwrites its (identical) payload instead of erroring.
    * Writes accumulate in one open transaction and commit every
      ``commit_interval`` mutations; ``sync()`` commits unconditionally —
      that is the barrier the coordinator's checkpoint relies on.
    * ``PRAGMA synchronous`` follows the system's fsync policy the same way
      the SQLite mirror does (``never`` → OFF, otherwise FULL), so a cold
      store inside a durable data dir is as crash-safe as the WAL next to it.
    * A single connection guarded by a lock (``check_same_thread=False``):
      eviction/page-in already serialise on shard locks, so backend
      contention is not a hot path.
    """

    _SYNCHRONOUS = {"always": "FULL", "batch": "FULL", "never": "OFF"}

    def __init__(
        self,
        path: Union[str, Path] = ":memory:",
        fsync_policy: str = "batch",
        commit_interval: int = 256,
    ) -> None:
        if fsync_policy not in self._SYNCHRONOUS:
            raise StorageError(
                f"unknown fsync_policy {fsync_policy!r} for the pending store; "
                f"expected one of {tuple(self._SYNCHRONOUS)}"
            )
        self._path = str(path)
        if self._path != ":memory:":
            Path(self._path).parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = sqlite3.connect(self._path, check_same_thread=False)
        except sqlite3.Error as exc:  # pragma: no cover - environment-dependent
            raise StorageError(f"cannot open pending store at {self._path}: {exc}") from exc
        self._lock = threading.Lock()
        self._pending_commits = 0
        self._commit_interval = max(1, commit_interval)
        self._closed = False
        with self._lock:
            self._conn.execute(
                f"PRAGMA synchronous={self._SYNCHRONOUS[fsync_policy]}"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS pending_spill ("
                "query_id TEXT PRIMARY KEY, payload TEXT NOT NULL)"
            )
            self._conn.commit()

    def put(self, query_id: str, payload: str) -> None:
        with self._lock:
            self._execute(
                "INSERT OR REPLACE INTO pending_spill (query_id, payload) VALUES (?, ?)",
                (query_id, payload),
            )
            self._bump_locked()

    def get(self, query_id: str) -> Optional[str]:
        with self._lock:
            cursor = self._execute(
                "SELECT payload FROM pending_spill WHERE query_id = ?", (query_id,)
            )
            row = cursor.fetchone()
        return None if row is None else str(row[0])

    def delete(self, query_id: str) -> None:
        with self._lock:
            self._execute("DELETE FROM pending_spill WHERE query_id = ?", (query_id,))
            self._bump_locked()

    def keys(self) -> list[str]:
        with self._lock:
            cursor = self._execute("SELECT query_id FROM pending_spill ORDER BY query_id")
            return [str(row[0]) for row in cursor.fetchall()]

    def __len__(self) -> int:
        with self._lock:
            cursor = self._execute("SELECT COUNT(*) FROM pending_spill")
            return int(cursor.fetchone()[0])

    def sync(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._commit_locked()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            try:
                self._commit_locked()
            finally:
                self._closed = True
                self._conn.close()

    def describe(self) -> str:
        return "sqlite:memory" if self._path == ":memory:" else f"sqlite:{self._path}"

    # -- internals ---------------------------------------------------------------------

    def _execute(self, sql: str, params: tuple[Any, ...] = ()) -> sqlite3.Cursor:
        if self._closed:
            raise StorageError("the pending store is closed")
        try:
            return self._conn.execute(sql, params)
        except sqlite3.Error as exc:
            raise StorageError(f"pending store failure: {exc}") from exc

    def _bump_locked(self) -> None:
        self._pending_commits += 1
        if self._pending_commits >= self._commit_interval:
            self._commit_locked()

    def _commit_locked(self) -> None:
        try:
            self._conn.commit()
        except sqlite3.Error as exc:
            raise StorageError(f"pending store commit failure: {exc}") from exc
        self._pending_commits = 0


# ---------------------------------------------------------------------------
# The backend registry
# ---------------------------------------------------------------------------

BackendFactory = Callable[[Optional[Path], str], PendingStoreBackend]

_REGISTRY: dict[str, BackendFactory] = {}


def register_backend(scheme: str, factory: BackendFactory) -> None:
    """Register a cold-store scheme for ``SystemConfig(cold_store=scheme)``.

    ``factory(data_dir, fsync_policy)`` must return a fresh backend; it is
    called once per coordinator.  Registering an existing scheme replaces it
    (tests swap in instrumented stores this way).
    """
    _REGISTRY[scheme.lower()] = factory


def backend_schemes() -> tuple[str, ...]:
    """The registered scheme names (for validation and error messages)."""
    return tuple(sorted(_REGISTRY))


def create_backend(
    scheme: str, data_dir: Optional[Union[str, Path]], fsync_policy: str = "batch"
) -> PendingStoreBackend:
    """Instantiate the backend registered for ``scheme``.

    The default ``sqlite`` backend lives at ``data_dir/cold_store.db`` so it
    is covered by the data dir's advisory lock and wiped with the WAL on a
    provably-failed bootstrap; without a ``data_dir`` it degrades to an
    in-memory SQLite database (same code path, no crash durability — exactly
    the guarantee a memory-only system has anyway).
    """
    factory = _REGISTRY.get(scheme.lower())
    if factory is None:
        known = ", ".join(backend_schemes()) or "none"
        raise StorageError(
            f"unknown cold_store backend {scheme!r} (registered schemes: {known})"
        )
    directory = None if data_dir is None else Path(data_dir)
    return factory(directory, fsync_policy)


def _sqlite_factory(data_dir: Optional[Path], fsync_policy: str) -> PendingStoreBackend:
    if data_dir is None:
        return SQLitePendingStore(":memory:", fsync_policy=fsync_policy)
    return SQLitePendingStore(data_dir / COLD_STORE_FILE, fsync_policy=fsync_policy)


def _memory_factory(data_dir: Optional[Path], fsync_policy: str) -> PendingStoreBackend:
    del data_dir, fsync_policy
    return MemoryPendingStore()


register_backend("sqlite", _sqlite_factory)
register_backend("memory", _memory_factory)


def encode_payload(sql: str, owner: Optional[str], priority: Optional[float]) -> str:
    """Serialize one spilled query (the same fields a WAL submit carries)."""
    return json.dumps({"sql": sql, "owner": owner, "priority": priority}, sort_keys=True)


def decode_payload(payload: str) -> dict[str, Any]:
    """Parse a spilled payload; raises :class:`StorageError` on corruption."""
    try:
        decoded = json.loads(payload)
    except (TypeError, ValueError) as exc:
        raise StorageError(f"corrupt pending-store payload: {exc}") from exc
    if not isinstance(decoded, dict) or not decoded.get("sql"):
        raise StorageError("corrupt pending-store payload: missing sql")
    return decoded
