"""In-memory tables: the row store behind the Youtopia database catalog.

A :class:`Table` stores validated positional tuples keyed by a monotonically
increasing row id.  Row ids are internal — they never leak through the query
engine — but they give updates, deletes and secondary indexes a stable handle.
Tables support an optional primary key (enforced through a unique hash index)
and any number of secondary hash indexes.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import ConstraintViolationError, StorageError
from repro.storage.indexes import HashIndex
from repro.storage.schema import TableSchema


class Table:
    """A mutable bag of tuples conforming to a :class:`TableSchema`."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: dict[int, tuple[Any, ...]] = {}
        self._next_row_id = itertools.count(1)
        self._indexes: dict[str, HashIndex] = {}
        if schema.primary_key:
            self.create_index("__pk__", schema.primary_key, unique=True)

    # -- introspection --------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(list(self._rows.values()))

    def rows(self) -> list[tuple[Any, ...]]:
        """A snapshot list of all rows (positional tuples)."""
        return list(self._rows.values())

    def rows_with_ids(self) -> list[tuple[int, tuple[Any, ...]]]:
        return list(self._rows.items())

    def dicts(self) -> list[dict[str, Any]]:
        """All rows as column-name → value dictionaries."""
        return [self.schema.row_as_dict(row) for row in self._rows.values()]

    # -- index management ------------------------------------------------------

    def create_index(self, name: str, columns: Sequence[str], unique: bool = False) -> HashIndex:
        if name in self._indexes:
            raise StorageError(f"index {name!r} already exists on table {self.name!r}")
        positions = tuple(self.schema.column_index(column) for column in columns)
        index = HashIndex(name, positions, unique=unique)
        index.rebuild(self._rows.items())
        self._indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise StorageError(f"no index named {name!r} on table {self.name!r}")
        del self._indexes[name]

    def indexes(self) -> dict[str, HashIndex]:
        return dict(self._indexes)

    def find_index(self, columns: Sequence[str]) -> HashIndex | None:
        """Return an index exactly covering ``columns`` (in order), if any."""
        wanted = tuple(self.schema.column_index(column) for column in columns)
        for index in self._indexes.values():
            if index.column_positions == wanted:
                return index
        return None

    # -- mutation ---------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> int:
        """Insert a positional row, returning its internal row id."""
        row = self.schema.validate_row(values)
        row_id = next(self._next_row_id)
        # Validate unique indexes before touching any of them so a violation
        # leaves the table unchanged.
        for index in self._indexes.values():
            if index.unique and index.lookup(index.key_for_row(row)):
                raise ConstraintViolationError(
                    f"unique index {index.name!r} on table {self.name!r} "
                    f"violated by row {row!r}"
                )
        self._rows[row_id] = row
        for index in self._indexes.values():
            index.add(row_id, row)
        return row_id

    def insert_mapping(self, mapping: dict[str, Any]) -> int:
        """Insert a row given as a column-name → value mapping."""
        return self.insert(self.schema.row_from_mapping(mapping))

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> list[int]:
        return [self.insert(row) for row in rows]

    def delete_where(self, predicate: Callable[[dict[str, Any]], bool]) -> int:
        """Delete every row whose dict form satisfies ``predicate``."""
        doomed = [
            row_id
            for row_id, row in self._rows.items()
            if predicate(self.schema.row_as_dict(row))
        ]
        for row_id in doomed:
            self._delete_row_id(row_id)
        return len(doomed)

    def update_where(
        self,
        predicate: Callable[[dict[str, Any]], bool],
        updater: Callable[[dict[str, Any]], dict[str, Any]],
    ) -> int:
        """Update matching rows.

        ``updater`` receives the current row as a dict and returns a dict of
        column → new value assignments (a partial update).  Returns the number
        of rows updated.
        """
        touched = 0
        for row_id, row in list(self._rows.items()):
            as_dict = self.schema.row_as_dict(row)
            if not predicate(as_dict):
                continue
            assignments = updater(as_dict)
            merged = dict(as_dict)
            merged.update(assignments)
            new_row = self.schema.row_from_mapping(merged)
            self._replace_row(row_id, new_row)
            touched += 1
        return touched

    def truncate(self) -> None:
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()

    def _delete_row_id(self, row_id: int) -> None:
        row = self._rows.pop(row_id)
        for index in self._indexes.values():
            index.remove(row_id, row)

    def _replace_row(self, row_id: int, new_row: tuple[Any, ...]) -> None:
        old_row = self._rows[row_id]
        for index in self._indexes.values():
            index.remove(row_id, old_row)
        try:
            for index in self._indexes.values():
                if index.unique and index.lookup(index.key_for_row(new_row)):
                    raise ConstraintViolationError(
                        f"unique index {index.name!r} on table {self.name!r} "
                        f"violated by update to {new_row!r}"
                    )
            self._rows[row_id] = new_row
            for index in self._indexes.values():
                index.add(row_id, new_row)
        except ConstraintViolationError:
            # restore the original row and its index entries before re-raising
            self._rows[row_id] = old_row
            for index in self._indexes.values():
                index.add(row_id, old_row)
            raise

    # -- querying ---------------------------------------------------------------

    def scan(self) -> Iterator[dict[str, Any]]:
        """Iterate over all rows as dictionaries (snapshot semantics)."""
        for row in self.rows():
            yield self.schema.row_as_dict(row)

    def lookup_equal(self, column_values: dict[str, Any]) -> list[dict[str, Any]]:
        """All rows matching the conjunction of ``column = value`` predicates.

        Uses a covering hash index when one exists, otherwise falls back to a
        scan.  The probe values are validated against the column types first so
        that e.g. probing an INTEGER column with a float key behaves like the
        scan path.
        """
        if not column_values:
            return list(self.scan())
        columns = list(column_values.keys())
        validated = {
            column: self.schema.column(column).validate(value)
            for column, value in column_values.items()
        }
        index = self.find_index(columns)
        if index is not None:
            key = tuple(validated[column] for column in columns)
            return [
                self.schema.row_as_dict(self._rows[row_id])
                for row_id in sorted(index.lookup(key))
            ]
        return [
            row
            for row in self.scan()
            if all(row[self.schema.column(c).name] == v for c, v in validated.items())
        ]

    def contains_row(self, values: Sequence[Any]) -> bool:
        """Whether an exact positional row is present (bag membership >= 1)."""
        target = self.schema.validate_row(values)
        return any(row == target for row in self._rows.values())

    # -- snapshot / restore (transaction support) --------------------------------

    def snapshot(self) -> dict[int, tuple[Any, ...]]:
        """An immutable copy of the current row-id → row mapping."""
        return dict(self._rows)

    def restore(self, snapshot: dict[int, tuple[Any, ...]]) -> None:
        """Restore a previously captured snapshot, rebuilding indexes."""
        self._rows = dict(snapshot)
        for index in self._indexes.values():
            index.rebuild(self._rows.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={len(self)})"
