"""The database catalog: a named collection of in-memory tables.

This is the "regular database tables" box of the Youtopia architecture
(Figure 2 of the demo paper).  The catalog supports DDL (create / drop),
lookups used by the relational engine, whole-database snapshots used by the
transaction layer, and change notification hooks used by the coordination
component to re-try pending entangled queries when base data changes.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import DuplicateTableError, UnknownTableError
from repro.storage.schema import Column, ColumnType, TableSchema, make_schema
from repro.storage.table import Table

# A change listener receives (table_name, kind) where kind is one of
# "insert", "delete", "update", "truncate", "create", "drop".
ChangeListener = Callable[[str, str], None]


class Database:
    """A thread-safe catalog of named :class:`Table` objects."""

    def __init__(self, name: str = "youtopia") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._lock = threading.RLock()
        self._listeners: list[ChangeListener] = []

    # -- DDL --------------------------------------------------------------------

    def create_table(
        self,
        schema: TableSchema | None = None,
        *,
        name: str | None = None,
        columns: Iterable[tuple[str, str] | tuple[str, str, bool] | Column] | None = None,
        primary_key: Sequence[str] = (),
        if_not_exists: bool = False,
    ) -> Table:
        """Create a table from a schema or from ``name`` + ``columns`` specs."""
        if schema is None:
            if name is None or columns is None:
                raise ValueError("either a schema or name+columns must be provided")
            schema = make_schema(name, columns, primary_key)
        key = schema.name.lower()
        with self._lock:
            if key in self._tables:
                if if_not_exists:
                    return self._tables[key]
                raise DuplicateTableError(schema.name)
            table = Table(schema)
            self._tables[key] = table
        self._notify(schema.name, "create")
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                if if_exists:
                    return
                raise UnknownTableError(name)
            del self._tables[key]
        self._notify(name, "drop")

    # -- lookups ------------------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        with self._lock:
            return sorted(table.name for table in self._tables.values())

    def tables(self) -> Iterator[Table]:
        with self._lock:
            return iter(list(self._tables.values()))

    def schema(self, name: str) -> TableSchema:
        return self.table(name).schema

    # -- DML convenience wrappers ---------------------------------------------------

    def insert(self, table_name: str, values: Sequence[Any]) -> int:
        row_id = self.table(table_name).insert(values)
        self._notify(table_name, "insert")
        return row_id

    def insert_mapping(self, table_name: str, mapping: dict[str, Any]) -> int:
        row_id = self.table(table_name).insert_mapping(mapping)
        self._notify(table_name, "insert")
        return row_id

    def insert_many(self, table_name: str, rows: Iterable[Sequence[Any]]) -> list[int]:
        ids = self.table(table_name).insert_many(rows)
        if ids:
            self._notify(table_name, "insert")
        return ids

    def delete_where(
        self, table_name: str, predicate: Callable[[dict[str, Any]], bool]
    ) -> int:
        count = self.table(table_name).delete_where(predicate)
        if count:
            self._notify(table_name, "delete")
        return count

    def update_where(
        self,
        table_name: str,
        predicate: Callable[[dict[str, Any]], bool],
        updater: Callable[[dict[str, Any]], dict[str, Any]],
    ) -> int:
        count = self.table(table_name).update_where(predicate, updater)
        if count:
            self._notify(table_name, "update")
        return count

    def truncate(self, table_name: str) -> None:
        self.table(table_name).truncate()
        self._notify(table_name, "truncate")

    # -- change notification ----------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> None:
        """Register a callback invoked after every successful change."""
        self._listeners.append(listener)

    def remove_listener(self, listener: ChangeListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, table_name: str, kind: str) -> None:
        for listener in list(self._listeners):
            listener(table_name, kind)

    # -- snapshots (transaction support) -------------------------------------------------

    def snapshot(self) -> dict[str, dict[int, tuple[Any, ...]]]:
        """Capture the contents of every table keyed by lowercase table name."""
        with self._lock:
            return {key: table.snapshot() for key, table in self._tables.items()}

    def restore(self, snapshot: dict[str, dict[int, tuple[Any, ...]]]) -> None:
        """Restore table contents from a prior :meth:`snapshot`.

        Tables created after the snapshot keep their schema but are truncated;
        tables dropped after the snapshot are *not* resurrected (DDL is outside
        the transactional scope of this reproduction).
        """
        with self._lock:
            for key, table in self._tables.items():
                if key in snapshot:
                    table.restore(snapshot[key])
                else:
                    table.truncate()

    # -- statistics ------------------------------------------------------------------------

    def statistics(self) -> dict[str, int]:
        """Row counts per table, for the administrative interface."""
        with self._lock:
            return {table.name: len(table) for table in self._tables.values()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name!r}, tables={self.table_names()})"


__all__ = ["Database", "ChangeListener", "Column", "ColumnType", "TableSchema", "make_schema"]
