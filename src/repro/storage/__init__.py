"""Relational storage substrate for the Youtopia reproduction.

Public surface:

* :class:`~repro.storage.schema.Column`, :class:`~repro.storage.schema.ColumnType`,
  :class:`~repro.storage.schema.TableSchema`, :func:`~repro.storage.schema.make_schema`
* :class:`~repro.storage.table.Table` and :class:`~repro.storage.indexes.HashIndex`
* :class:`~repro.storage.database.Database` — the catalog used by the rest of the system
* :class:`~repro.storage.sqlite_backend.SQLiteMirror` — optional persistence
* :func:`~repro.storage.csvio.import_table` / :func:`~repro.storage.csvio.export_table`
"""

from repro.storage.csvio import export_table, import_table
from repro.storage.database import Database
from repro.storage.indexes import HashIndex
from repro.storage.schema import Column, ColumnType, TableSchema, make_schema
from repro.storage.sqlite_backend import SQLiteMirror
from repro.storage.table import Table

__all__ = [
    "Column",
    "ColumnType",
    "Database",
    "HashIndex",
    "SQLiteMirror",
    "Table",
    "TableSchema",
    "export_table",
    "import_table",
    "make_schema",
]
