"""Table schemas: typed columns, primary keys, value validation and coercion.

The storage engine is deliberately simple — a relation is a bag of tuples with
a fixed, ordered list of typed columns — but the schema layer is strict: every
value that enters a table is validated (and, where unambiguous, coerced)
against the declared column type so the upper layers can rely on clean data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import SchemaError, TypeMismatchError, UnknownColumnError


class ColumnType(enum.Enum):
    """The column types supported by the storage engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    ANY = "ANY"

    @classmethod
    def from_name(cls, name: str) -> "ColumnType":
        """Parse a SQL type name (``INT``, ``VARCHAR``, ...) into a ColumnType."""
        normalized = name.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "DECIMAL": cls.REAL,
            "NUMERIC": cls.REAL,
            "TEXT": cls.TEXT,
            "STRING": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
            "ANY": cls.ANY,
        }
        if normalized not in aliases:
            raise SchemaError(f"unsupported column type: {name!r}")
        return aliases[normalized]

    def python_types(self) -> tuple[type, ...]:
        """Python types accepted without coercion for this column type."""
        if self is ColumnType.ANY:
            return (int, float, str, bool)
        if self is ColumnType.INTEGER:
            return (int,)
        if self is ColumnType.REAL:
            return (float, int)
        if self is ColumnType.BOOLEAN:
            return (bool,)
        return (str,)


@dataclass(frozen=True)
class Column:
    """One column of a table schema.

    Parameters
    ----------
    name:
        Column name; matching is case-insensitive but the declared spelling is
        preserved for display.
    type:
        Declared :class:`ColumnType`.
    nullable:
        Whether ``None`` is an acceptable value.
    """

    name: str
    type: ColumnType
    nullable: bool = True

    def validate(self, value: Any) -> Any:
        """Validate (and possibly coerce) ``value`` for this column.

        Returns the stored representation.  Raises
        :class:`~repro.errors.TypeMismatchError` when the value cannot be
        represented in the declared type.
        """
        if value is None:
            if not self.nullable:
                raise TypeMismatchError(f"column {self.name!r} is NOT NULL")
            return None
        if self.type is ColumnType.ANY:
            if isinstance(value, (int, float, str, bool)):
                return value
            raise TypeMismatchError(
                f"column {self.name!r} expects a scalar value, got {value!r}"
            )
        if self.type is ColumnType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, int) and value in (0, 1):
                return bool(value)
            raise TypeMismatchError(f"column {self.name!r} expects BOOLEAN, got {value!r}")
        if self.type is ColumnType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                if isinstance(value, float) and value.is_integer():
                    return int(value)
                raise TypeMismatchError(f"column {self.name!r} expects INTEGER, got {value!r}")
            return value
        if self.type is ColumnType.REAL:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(f"column {self.name!r} expects REAL, got {value!r}")
            return float(value)
        # TEXT
        if not isinstance(value, str):
            raise TypeMismatchError(f"column {self.name!r} expects TEXT, got {value!r}")
        return value


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of columns plus an optional primary key.

    The primary key is a tuple of column names; when present, the table
    enforces uniqueness over those columns.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        seen: set[str] = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SchemaError(f"duplicate column {column.name!r} in table {self.name!r}")
            seen.add(lowered)
        for key_column in self.primary_key:
            if key_column.lower() not in seen:
                raise SchemaError(
                    f"primary key column {key_column!r} not in table {self.name!r}"
                )

    # -- column lookups -----------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def column_index(self, name: str) -> int:
        """Return the position of column ``name`` (case-insensitive)."""
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        raise UnknownColumnError(name, self.name)

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def primary_key_indexes(self) -> tuple[int, ...]:
        return tuple(self.column_index(name) for name in self.primary_key)

    # -- row validation -----------------------------------------------------

    def validate_row(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Validate a full positional row and return the stored tuple."""
        if len(values) != len(self.columns):
            raise TypeMismatchError(
                f"table {self.name!r} expects {len(self.columns)} values, got {len(values)}"
            )
        return tuple(
            column.validate(value) for column, value in zip(self.columns, values)
        )

    def row_from_mapping(self, mapping: dict[str, Any]) -> tuple[Any, ...]:
        """Build a positional row from a column-name → value mapping.

        Missing columns become ``None`` (subject to NOT NULL validation);
        unknown keys raise :class:`~repro.errors.UnknownColumnError`.
        """
        lowered_to_value: dict[str, Any] = {}
        for key, value in mapping.items():
            if not self.has_column(key):
                raise UnknownColumnError(key, self.name)
            lowered_to_value[key.lower()] = value
        values = [lowered_to_value.get(column.name.lower()) for column in self.columns]
        return self.validate_row(values)

    def row_as_dict(self, row: Sequence[Any]) -> dict[str, Any]:
        """Return ``row`` as a column-name → value dictionary."""
        return {column.name: value for column, value in zip(self.columns, row)}


def make_schema(
    name: str,
    columns: Iterable[tuple[str, str] | tuple[str, str, bool] | Column],
    primary_key: Sequence[str] = (),
) -> TableSchema:
    """Convenience constructor used throughout tests and applications.

    ``columns`` accepts either :class:`Column` instances or ``(name, type)`` /
    ``(name, type, nullable)`` tuples where ``type`` is a SQL type name.
    """
    built: list[Column] = []
    for spec in columns:
        if isinstance(spec, Column):
            built.append(spec)
            continue
        if len(spec) == 2:
            column_name, type_name = spec  # type: ignore[misc]
            nullable = True
        else:
            column_name, type_name, nullable = spec  # type: ignore[misc]
        built.append(Column(column_name, ColumnType.from_name(type_name), nullable))
    return TableSchema(name=name, columns=tuple(built), primary_key=tuple(primary_key))
