"""Joint execution of a matched group of entangled queries.

**Role**: turn a matched group plus its consistent grounding into durable
answer-relation rows and side effects, atomically.

**Paper correspondence**: "The execution engine evaluates queries on the
database as required by the coordination component, as well as executing any
other queries and updates that may be necessary" (demo paper, Section 2.2).
After the matcher has found
a group and a consistent grounding, the :class:`JointExecutor` makes the
answers durable: inside one transaction it inserts every instantiated head
tuple into its answer relation and runs any registered side-effect hooks
(the travel application uses a hook to turn ``Reservation`` answer tuples into
seat-count updates).  Failure anywhere rolls the whole group back — joint
execution is all-or-nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core import ir
from repro.core.answer import AnswerRelationRegistry
from repro.core.matching import MatchedGroup
from repro.core.transactions import TransactionManager
from repro.errors import ExecutionError
from repro.relalg.engine import QueryEngine

# A side-effect hook receives (relation_name, tuple, engine) for every answer
# tuple inserted and may perform additional DML through the engine.  Hooks run
# inside the same transaction as the answer insertion.
SideEffectHook = Callable[[str, tuple[Any, ...], QueryEngine], None]


@dataclass
class ExecutionOutcome:
    """What a successful joint execution produced."""

    group: MatchedGroup
    answers: list[ir.GroundAnswer] = field(default_factory=list)
    inserted: dict[str, list[tuple[Any, ...]]] = field(default_factory=dict)

    @property
    def query_ids(self) -> list[str]:
        return self.group.query_ids


class JointExecutor:
    """Applies a matched group's answers to the database atomically."""

    def __init__(
        self,
        engine: QueryEngine,
        registry: AnswerRelationRegistry,
        transactions: TransactionManager,
    ) -> None:
        self.engine = engine
        self.registry = registry
        self.transactions = transactions
        self._hooks: dict[str, list[SideEffectHook]] = {}
        self._global_hooks: list[SideEffectHook] = []

    # -- hook registration ------------------------------------------------------------

    def register_hook(self, hook: SideEffectHook, relation: str | None = None) -> None:
        """Run ``hook`` for every inserted answer tuple (optionally filtered)."""
        if relation is None:
            self._global_hooks.append(hook)
        else:
            self._hooks.setdefault(relation.lower(), []).append(hook)

    # -- execution -----------------------------------------------------------------------

    def execute(self, group: MatchedGroup) -> ExecutionOutcome:
        """Insert the group's answer tuples (and side effects) atomically."""
        answers = group.answers()
        inserted: dict[str, list[tuple[Any, ...]]] = {}
        try:
            with self.transactions.atomic():
                for answer in answers:
                    for relation, values in answer.all_tuples():
                        spec = self.registry.ensure(relation, len(values))
                        self.registry.insert(spec.name, values)
                        inserted.setdefault(spec.name, []).append(tuple(values))
                        for hook in self._hooks.get(spec.name.lower(), []):
                            hook(spec.name, tuple(values), self.engine)
                        for hook in self._global_hooks:
                            hook(spec.name, tuple(values), self.engine)
        except ExecutionError:
            raise
        except Exception as exc:  # noqa: BLE001 - any failure aborts the group
            raise ExecutionError(
                f"joint execution of group {group.query_ids} failed and was rolled back: {exc}"
            ) from exc
        return ExecutionOutcome(group=group, answers=answers, inserted=inserted)
