"""Match selection policies over enumerated candidate groups.

The matcher (:mod:`repro.core.matching`) enumerates candidate match groups
lazily; a *policy* chooses which of the enumerated candidates to commit.
Conceptually this conditions the space of possible coordinated worlds the
search discovers and picks one under a preference order — ranked marketplaces,
wait-time fairness — without touching the search itself.

Policies are pure: given the same candidate list and the same
:class:`PolicyContext`, :func:`select` always returns the same decision.
Every policy reduces to a sort key where *smaller is better*; exact key ties
are broken deterministically by the group's sorted query-id tuple (then by
enumeration order), so selection is reproducible across runs and across
processes.

The ``first_match`` policy is special-cased by the coordinator: it takes the
first enumerated group without materialising any others, which is exactly the
pre-policy behaviour (and the same cost).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Protocol, Sequence, runtime_checkable

from repro.core.matching import MatchedGroup
from repro.errors import EntanglementError

DEFAULT_POLICY = "first_match"
DEFAULT_CANDIDATE_LIMIT = 16
DEFAULT_COST_ATTRIBUTE = "price"


@dataclass(frozen=True)
class PolicyContext:
    """Everything a policy may consult besides the candidate groups themselves.

    ``priorities`` and ``registered_at`` are keyed by query id; queries absent
    from a mapping fall back to priority ``0.0`` / registration "now".
    """

    trigger_id: str
    now: float = 0.0
    priorities: Mapping[str, float] = field(default_factory=dict)
    registered_at: Mapping[str, float] = field(default_factory=dict)
    cost_attribute: str = DEFAULT_COST_ATTRIBUTE


@dataclass(frozen=True)
class PolicyDecision:
    """The outcome of one :func:`select` call, for stats accounting."""

    group: MatchedGroup
    index: int
    enumerated: int
    tie_broken: bool


@runtime_checkable
class MatchPolicy(Protocol):
    """A preference order over candidate groups.

    ``key`` maps a group to a sort key where smaller is better.  Keys must be
    derived only from the group and the context (no hidden state, no
    randomness) so that selection stays deterministic.
    """

    name: str

    def key(self, group: MatchedGroup, context: PolicyContext) -> tuple[Any, ...]: ...


class FirstMatchPolicy:
    """Take the first group the search discovers — the pre-policy default."""

    name = "first_match"

    def key(self, group: MatchedGroup, context: PolicyContext) -> tuple[Any, ...]:
        return ()


class PriorityPolicy:
    """Maximise the summed per-query priority of the group's members.

    Priorities arrive through ``SubmitRequest.priority`` (absent = ``0.0``).
    """

    name = "priority"

    def key(self, group: MatchedGroup, context: PolicyContext) -> tuple[Any, ...]:
        total = sum(context.priorities.get(query_id, 0.0) for query_id in group.query_ids)
        return (-total,)


class FairnessPolicy:
    """Serve the longest-waiting query first.

    The group whose oldest member registered earliest wins, so whenever the
    oldest pending query appears in *any* enumerated candidate, the chosen
    group contains it — the maximum wait-time left behind in the pool is
    minimised and no query is starved by perpetually-fresher competitors.
    """

    name = "fairness"

    def key(self, group: MatchedGroup, context: PolicyContext) -> tuple[Any, ...]:
        oldest = min(
            context.registered_at.get(query_id, context.now) for query_id in group.query_ids
        )
        return (oldest,)


class MinCostPolicy:
    """Minimise the summed numeric cost attribute over the chosen valuations.

    The cost attribute (``SystemConfig.policy_cost_attribute``, default
    ``price``) is looked up case-insensitively in each member's chosen
    valuations; queries whose valuations never bind it contribute zero, so
    the policy degrades gracefully on cost-free domains.
    """

    name = "min_cost"

    def key(self, group: MatchedGroup, context: PolicyContext) -> tuple[Any, ...]:
        return (group_cost(group, context.cost_attribute),)


def group_cost(group: MatchedGroup, attribute: str) -> float:
    """Sum the numeric values the group's valuations bind to ``attribute``."""
    wanted = attribute.lower()
    total = 0.0
    for valuations in group.bindings.values():
        for valuation in valuations:
            for name, value in valuation.items():
                if name.lower() != wanted:
                    continue
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                total += float(value)
    return total


POLICIES: dict[str, type] = {
    policy.name: policy
    for policy in (FirstMatchPolicy, PriorityPolicy, FairnessPolicy, MinCostPolicy)
}

POLICY_NAMES: tuple[str, ...] = tuple(POLICIES)


def get_policy(name: str) -> MatchPolicy:
    """Instantiate a policy by name, raising on unknown names."""
    try:
        factory = POLICIES[name]
    except KeyError:
        known = ", ".join(POLICY_NAMES)
        raise EntanglementError(f"unknown match policy {name!r} (known policies: {known})")
    return factory()


def _tie_break(group: MatchedGroup) -> tuple[str, ...]:
    return tuple(sorted(group.query_ids))


def select(
    policy: MatchPolicy,
    candidates: Sequence[MatchedGroup],
    context: PolicyContext,
) -> PolicyDecision:
    """Choose one group from ``candidates`` under ``policy``.

    Deterministic: argmin of ``policy.key``, exact-key ties broken by the
    lexicographically smallest sorted query-id tuple, then by enumeration
    order.  Raises when ``candidates`` is empty.
    """
    if not candidates:
        raise EntanglementError("cannot select a match group from an empty candidate list")
    keyed = [
        (policy.key(group, context), index, group) for index, group in enumerate(candidates)
    ]
    best = min(key for key, _, _ in keyed)
    tied = [(index, group) for key, index, group in keyed if key == best]
    tie_broken = len(tied) > 1
    index, group = min(tied, key=lambda entry: (_tie_break(entry[1]), entry[0]))
    return PolicyDecision(
        group=group, index=index, enumerated=len(candidates), tie_broken=tie_broken
    )


class PolicyStatistics:
    """Thread-safe per-coordinator counters describing policy decisions."""

    def __init__(self, policy: str, candidate_limit: int) -> None:
        self.policy = policy
        self.candidate_limit = candidate_limit
        self._lock = threading.Lock()
        self.decisions = 0
        self.groups_enumerated = 0
        self.groups_skipped = 0
        self.ties_broken = 0
        self.enumerations_truncated = 0

    def record(self, decision: PolicyDecision, truncated: bool = False) -> None:
        with self._lock:
            self.decisions += 1
            self.groups_enumerated += decision.enumerated
            self.groups_skipped += decision.enumerated - 1
            if decision.tie_broken:
                self.ties_broken += 1
            if truncated:
                self.enumerations_truncated += 1

    def record_first_match(self) -> None:
        """Account a short-circuited first_match decision (one group, no skip)."""
        with self._lock:
            self.decisions += 1
            self.groups_enumerated += 1

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "policy": self.policy,
                "candidate_limit": self.candidate_limit,
                "decisions": self.decisions,
                "groups_enumerated": self.groups_enumerated,
                "groups_skipped": self.groups_skipped,
                "ties_broken": self.ties_broken,
                "enumerations_truncated": self.enumerations_truncated,
            }
