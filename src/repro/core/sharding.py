"""Sharded, event-driven coordination: partitioned pools and a worker pool.

The inline :class:`~repro.core.coordinator.Coordinator` funnels every submit,
data-change retry and match pass through one global lock — fine for a demo,
but a wall for the "millions of users" north star.  This module partitions the
pending pool by *relation signature*: two entangled queries can only ever
coordinate if an answer-constraint atom of one unifies with a head atom of the
other, which requires the **same answer relation**.  Queries whose entangled
atoms all hash to the same shard therefore form an independent matching
universe with its own :class:`~repro.core.matching.ProviderIndex`, lock and
pending set.

Matching becomes *event-driven*: ``submit`` / ``submit_many`` only register
the query and enqueue a match event on its shard; a
:class:`MatchWorkerPool` of background threads drains the per-shard queues.
Callers observe answers through ``wait`` / handles / done-callbacks, exactly
as over a network transport.

Three consequences of the partitioning:

* **Scoped retries.**  A data change marks every shard dirty, but a shard
  only sweeps *its own* pending set when its next event is processed — the
  sweep that used to rescan the whole pool now touches ``pending / shards``
  queries.  Shards that receive no arrival traffic are covered by the
  idle-sweep backstop (``SystemConfig.idle_sweep_interval``): an idle worker
  sweeps any shard whose dirty flag outlives the interval.
* **Cross-shard fallback.**  A query whose entangled relations hash to
  different shards cannot be pinned to one universe; it lives in a dedicated
  *global residence* and always matches via a short global pass over every
  shard (all shard locks, taken in a fixed order).  A shard-local attempt
  that fails while global residents exist escalates to the same global pass,
  because a coordination chain can only leave a shard through a cross-shard
  query.  This preserves the paper's matching semantics exactly — see
  ``tests/integration/test_sharded_fuzz.py`` for the equivalence harness.
* **Non-blocking submission.**  Registration takes only the target shard's
  lock plus the cheap request-state lock; a long match pass on one shard no
  longer delays arrivals on another.

Lock ordering (to keep the whole thing deadlock-free):
``_db_lock`` → shard locks (ascending ``shard_id``, global residence last) →
request-state lock (``self._lock``).  The scheduling state (event queues,
busy flags) lives under the worker pool's own condition variable and is never
held while taking any other lock.  Match passes themselves serialise on
``_db_lock`` — grounding reads the database and must not interleave with a
transactional joint execution — so worker threads buy responsiveness and
scan scoping, not parallel matching compute.  Done-callbacks are deferred
until every lock is released before being invoked; event-bus *subscribers*
are still called synchronously under coordinator locks (as on the inline
path) and must not call back into the coordinator from another lock order.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from contextlib import ExitStack, contextmanager, nullcontext
from typing import Any, Callable, Iterator, MutableMapping, Optional, Sequence, Union

from repro.core import ir
from repro.core.coordinator import CoordinationRequest, Coordinator, QueryStatus
from repro.core.events import EventType
from repro.core.executor import ExecutionOutcome
from repro.core.matching import MatchedGroup, ProviderIndex, Provider, build_provider_index
from repro.core.matchplan import CompiledAtom, GridProviderIndex
from repro.errors import (
    EntanglementError,
    QueryAlreadyAnsweredError,
    QueryNotPendingError,
)
from repro.sqlparser import ast


# ---------------------------------------------------------------------------
# Relation-signature routing
# ---------------------------------------------------------------------------


def relation_signature(query: ir.EntangledQuery) -> frozenset[str]:
    """The set of answer relations a query's entangled atoms reference.

    Heads and answer constraints both count: a head *provides* tuples of a
    relation, an answer constraint *requires* them, and matching pairs the
    two — so any potential partner shares at least one of these relations.
    """
    return frozenset(relation.lower() for relation in query.answer_relations())


def shard_for_relation(relation: str, shard_count: int) -> int:
    """Stable shard assignment for one relation (CRC32, not the salted hash)."""
    return zlib.crc32(relation.lower().encode("utf-8")) % shard_count


def route_signature(signature: frozenset[str], shard_count: int) -> Optional[int]:
    """The single shard owning a signature, or ``None`` for cross-shard.

    The union of the signature's relations must agree on one shard; a query
    whose relations hash to different shards bridges matching universes and
    must be matched by the global pass.
    """
    if not signature:
        return 0
    shards = {shard_for_relation(relation, shard_count) for relation in signature}
    if len(shards) == 1:
        return shards.pop()
    return None


def node_for_relation(
    relation: str, node_count: int, shard_count: Optional[int] = None
) -> int:
    """Stable cluster-node assignment for one relation.

    Derived from :func:`shard_for_relation` so signature→node routing *agrees*
    with signature→shard routing: with ``shard_count`` a multiple of
    ``node_count`` (the cluster default is ``shard_count == node_count``), two
    relations on the same shard always land on the same node — a query that is
    single-shard inside one process is single-node across the cluster.
    """
    return shard_for_relation(relation, shard_count or node_count) % node_count


def route_signature_to_node(
    signature: frozenset[str], node_count: int, shard_count: Optional[int] = None
) -> Optional[int]:
    """The single cluster node owning a signature, or ``None`` for cross-node.

    The node-level twin of :func:`route_signature`: an empty signature pins to
    node 0, a signature whose relations agree on one node routes there, and a
    signature spanning nodes returns ``None`` — the router's cross-node
    residence pass (the cluster analogue of the in-process global residence)
    must own it.
    """
    if not signature:
        return 0
    nodes = {node_for_relation(relation, node_count, shard_count) for relation in signature}
    if len(nodes) == 1:
        return nodes.pop()
    return None


# ---------------------------------------------------------------------------
# Shards
# ---------------------------------------------------------------------------


class QueryShard:
    """One independent matching universe: pending set, provider index, lock.

    ``pool`` / ``index`` / ``dirty`` are guarded by ``lock``; the scheduling
    fields ``events`` / ``busy`` belong to the :class:`MatchWorkerPool` and
    are guarded by its condition variable instead.
    """

    def __init__(
        self,
        shard_id: int,
        use_constant_index: bool = True,
        provider_index: str = "single_key",
    ) -> None:
        self.shard_id = shard_id
        self.lock = threading.RLock()
        # A plain dict, or a TieredPool when the coordinator has a
        # pending_memory_limit — same mapping surface either way.
        self.pool: MutableMapping[str, ir.EntangledQuery] = {}
        self.index: Union[ProviderIndex, GridProviderIndex] = build_provider_index(
            provider_index, use_constant_index=use_constant_index
        )
        self.dirty = False
        self.dirty_since = 0.0
        # Scheduling state, owned by the worker pool.
        self.events: deque[str] = deque()
        self.busy = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryShard(id={self.shard_id}, pending={len(self.pool)})"


class _CompositePool:
    """A read-only union view over several shards' pending pools.

    Implements exactly the mapping surface the matcher probes (``in``,
    ``get``, ``len``); query ids are globally unique so the union is disjoint.
    """

    def __init__(self, shards: Sequence[QueryShard]) -> None:
        self._shards = shards

    def get(
        self, query_id: str, default: Optional[ir.EntangledQuery] = None
    ) -> Optional[ir.EntangledQuery]:
        for shard in self._shards:
            query = shard.pool.get(query_id)
            if query is not None:
                return query
        return default

    def __contains__(self, query_id: object) -> bool:
        return self.get(query_id) is not None  # type: ignore[arg-type]

    def __len__(self) -> int:
        return sum(len(shard.pool) for shard in self._shards)


class _CompositeIndex:
    """Probe-side union of several shards' provider indexes.

    Candidates are concatenated in shard order (each shard's list is already
    deterministic), so the global pass is as reproducible as the local one.
    """

    def __init__(self, indexes: Sequence[Union[ProviderIndex, GridProviderIndex]]) -> None:
        self._indexes = indexes

    def candidates(self, atom: ir.Atom) -> list[Provider]:
        found: list[Provider] = []
        for index in self._indexes:
            found.extend(index.candidates(atom))
        return found

    def candidates_compiled(self, probe: CompiledAtom) -> list[Provider]:
        found: list[Provider] = []
        for index in self._indexes:
            found.extend(index.candidates_compiled(probe))
        return found

    def atom_of(self, provider: Provider) -> ir.Atom:
        for index in self._indexes:
            try:
                return index.atom_of(provider)
            except KeyError:
                continue
        raise KeyError(provider)

    def __len__(self) -> int:
        return sum(len(index) for index in self._indexes)


# ---------------------------------------------------------------------------
# The worker pool
# ---------------------------------------------------------------------------


class MatchWorkerPool:
    """N background threads draining per-shard match-event queues.

    Events are query ids awaiting a match attempt on their shard.  A worker
    claims a shard (marking it busy so per-shard processing stays FIFO and
    single-threaded), drains *all* queued events for it in one batch — which
    coalesces the dirty-retry sweep across the batch — and processes them via
    the callback supplied by the coordinator.  Distinct shards are *claimed*
    by distinct workers; note that the match passes themselves serialise on
    the coordinator's database lock (grounding reads must not interleave with
    transactional writes), so the payoff of multiple workers is per-shard
    FIFO queues, scoped retry sweeps and non-blocking submission — not
    parallel matching compute.

    With ``idle_sweep_interval > 0`` an otherwise-idle worker also claims any
    shard whose dirty flag (set by data changes) has been pending longer than
    the interval and has residents to retry — the liveness backstop for
    shards that receive no arrival traffic of their own.
    """

    def __init__(
        self,
        shards: Sequence[QueryShard],
        process: Callable[[QueryShard, list[str]], None],
        num_workers: int,
        thread_name: str = "match-worker",
        idle_sweep_interval: float = 0.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("MatchWorkerPool needs at least one worker")
        self._shards = list(shards)
        self._process = process
        self._cond = threading.Condition()
        self._running = True
        self._in_flight = 0
        self._next_shard = 0
        self._idle_sweep_interval = max(0.0, idle_sweep_interval)
        self.errors: list[Exception] = []
        self._threads = [
            threading.Thread(target=self._loop, name=f"{thread_name}-{i}", daemon=True)
            for i in range(num_workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- producer side -----------------------------------------------------------------

    @property
    def running(self) -> bool:
        with self._cond:
            return self._running

    @property
    def worker_count(self) -> int:
        return len(self._threads)

    def enqueue(self, shard: QueryShard, query_id: str) -> None:
        with self._cond:
            shard.events.append(query_id)
            self._in_flight += 1
            self._cond.notify()

    def enqueue_many(self, items: Sequence[tuple[QueryShard, str]]) -> None:
        if not items:
            return
        with self._cond:
            for shard, query_id in items:
                shard.events.append(query_id)
            self._in_flight += len(items)
            self._cond.notify_all()

    def queued(self, shard: QueryShard) -> int:
        with self._cond:
            return len(shard.events)

    def record_error(self, exc: Exception) -> None:
        """Keep a processing failure observable without killing the worker."""
        with self._cond:
            self.errors.append(exc)

    def kick(self) -> None:
        """Wake idle workers (e.g. after dirty flags changed)."""
        with self._cond:
            self._cond.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued event has been processed.

        Returns ``False`` on timeout or if the pool was shut down with events
        still queued.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._in_flight > 0:
                if not self._running:
                    return False
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
            return True

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers; in-progress batches finish, queued events do not."""
        with self._cond:
            if not self._running:
                return
            self._running = False
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout)

    # -- worker side -----------------------------------------------------------------

    def _pick_locked(self) -> Optional[QueryShard]:
        """Round-robin over shards with queued events that nobody is processing."""
        count = len(self._shards)
        for offset in range(count):
            shard = self._shards[(self._next_shard + offset) % count]
            if shard.events and not shard.busy:
                self._next_shard = (self._next_shard + offset + 1) % count
                return shard
        return None

    def _pick_idle_sweep_locked(self) -> Optional[QueryShard]:
        """A shard whose dirty flag outlived the idle interval, if any.

        ``dirty``/``pool`` are peeked without the shard lock — a benign race,
        since the sweep re-checks both under the lock before doing work.
        """
        if self._idle_sweep_interval <= 0:
            return None
        now = time.monotonic()
        for shard in self._shards:
            if (
                not shard.busy
                and not shard.events
                and shard.dirty
                and shard.pool
                and now - shard.dirty_since >= self._idle_sweep_interval
            ):
                return shard
        return None

    def _loop(self) -> None:
        while True:
            batch: list[str] = []
            with self._cond:
                while True:
                    if not self._running:
                        return
                    shard = self._pick_locked()
                    if shard is not None:
                        batch = list(shard.events)
                        shard.events.clear()
                        break
                    shard = self._pick_idle_sweep_locked()
                    if shard is not None:
                        break  # empty batch: dirty sweep only
                    self._cond.wait(
                        self._idle_sweep_interval if self._idle_sweep_interval > 0 else None
                    )
                shard.busy = True
            try:
                self._process(shard, batch)
            except Exception as exc:  # noqa: BLE001 - a poisoned event must not kill the worker
                self.record_error(exc)
            finally:
                with self._cond:
                    shard.busy = False
                    self._in_flight -= len(batch)
                    self._cond.notify_all()


# ---------------------------------------------------------------------------
# The sharded coordinator
# ---------------------------------------------------------------------------


class ShardedCoordinator(Coordinator):
    """Event-driven coordination over relation-signature shards.

    Public surface is identical to :class:`~repro.core.coordinator.Coordinator`
    with one semantic difference: ``submit`` / ``submit_many`` return
    ``PENDING`` requests and the match attempt happens on a background worker
    — use :meth:`wait`, handles, done-callbacks, or :meth:`drain` to observe
    completion.  Constructed by :class:`~repro.core.system.YoutopiaSystem`
    whenever ``SystemConfig.match_workers >= 1``.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if self.config.match_workers < 1:
            raise ValueError("ShardedCoordinator requires config.match_workers >= 1")
        self._shard_count = self.config.resolved_shard_count
        self._shards = [
            QueryShard(
                i,
                use_constant_index=self.config.use_constant_index,
                provider_index=self.config.provider_index,
            )
            for i in range(self._shard_count)
        ]
        # Cross-shard queries live here; ordered last so the global pass can
        # take every lock in ascending shard_id order.
        self._global_shard = QueryShard(
            self._shard_count,
            use_constant_index=self.config.use_constant_index,
            provider_index=self.config.provider_index,
        )
        self._all_shards = self._shards + [self._global_shard]
        if self._tiering is not None:
            # Re-budget the hot set over the pools that will actually hold
            # queries: the base class's inline pool is vestigial here, and
            # swapping shard pools is safe because the worker pool (below)
            # has not started yet.
            self._tiering.drop_pool(self._pool)
            self._pool = {}
            for shard in self._all_shards:
                shard.pool = self._tiering.new_pool()
        self._db_lock = threading.RLock()
        # Done-callbacks must not run while worker/shard locks are held (a
        # callback re-entering the coordinator from another thread's lock
        # ordering could deadlock); paths that complete requests defer them
        # to this thread-local queue and flush after releasing every lock.
        self._deferred_callbacks = threading.local()
        self._workers = MatchWorkerPool(
            self._all_shards,
            self._process_events,
            self.config.match_workers,
            idle_sweep_interval=self.config.idle_sweep_interval,
        )

    # -- routing -----------------------------------------------------------------------

    def shard_of(self, query: ir.EntangledQuery) -> QueryShard:
        """The shard a query resides in (the global residence if cross-shard)."""
        index = route_signature(relation_signature(query), self._shard_count)
        if index is None:
            return self._global_shard
        return self._shards[index]

    # -- submission --------------------------------------------------------------------

    def submit(
        self,
        query: Union[ir.EntangledQuery, ast.EntangledSelect, str],
        owner: Optional[str] = None,
    ) -> CoordinationRequest:
        """Register a query and enqueue its match event; returns immediately.

        The returned request is ``PENDING`` (unless rejected); the match
        attempt runs on a background worker.
        """
        query = self._coerce_query(query, owner)
        request = CoordinationRequest(query=query)
        rejection = self._run_static_checks(request)
        if rejection is not None:
            with self._lock:
                self._requests[query.query_id] = request
                self.statistics.queries_rejected += 1
            self.events.publish(
                EventType.QUERY_REJECTED,
                query_id=query.query_id,
                owner=owner,
                reason=str(rejection),
            )
            raise rejection

        shard = self.shard_of(query)
        with shard.lock, self._lock:
            if query.query_id in self._requests:
                raise EntanglementError(
                    f"a query with id {query.query_id!r} is already registered"
                )
            self._register_locked(request)
        self._workers.enqueue(shard, query.query_id)
        self._maybe_checkpoint()
        return request

    def submit_many(
        self,
        queries: Sequence[Union[ir.EntangledQuery, ast.EntangledSelect, str]],
        owner: Optional[str] = None,
    ) -> list[CoordinationRequest]:
        """Register a batch and enqueue its match events in arrival order.

        Per-item rejection semantics match the inline coordinator; the match
        events are enqueued together, so a worker draining a shard processes
        the whole sub-batch in one pass (the sharded analogue of the single
        deferred match pass).
        """
        compiled = [self._coerce_query(query, owner) for query in queries]
        batch: list[CoordinationRequest] = []
        to_enqueue: list[tuple[QueryShard, str]] = []
        # One group-commit scope per batch (one fsync under the "batch"
        # fsync policy, however many shards the submissions land on).
        journal_scope = self.journal.group_commit() if self.journal is not None else nullcontext()
        with journal_scope:
            self._register_batch(compiled, batch, to_enqueue)
        self._workers.enqueue_many(to_enqueue)
        self._maybe_checkpoint()
        return batch

    def _register_batch(
        self,
        compiled: Sequence[ir.EntangledQuery],
        batch: list[CoordinationRequest],
        to_enqueue: list[tuple[QueryShard, str]],
    ) -> None:
        for query in compiled:
            request = CoordinationRequest(query=query)
            batch.append(request)
            rejection = self._run_static_checks(request)
            if rejection is not None:
                with self._lock:
                    self._requests.setdefault(query.query_id, request)
                    self.statistics.queries_rejected += 1
                self.events.publish(
                    EventType.QUERY_REJECTED,
                    query_id=query.query_id,
                    owner=query.owner,
                    reason=str(rejection),
                )
                continue
            shard = self.shard_of(query)
            with shard.lock, self._lock:
                if query.query_id in self._requests:
                    request.status = QueryStatus.REJECTED
                    request.error = (
                        f"a query with id {query.query_id!r} is already registered"
                    )
                    self.statistics.queries_rejected += 1
                    self.events.publish(
                        EventType.QUERY_REJECTED,
                        query_id=query.query_id,
                        owner=query.owner,
                        reason=request.error,
                    )
                    continue
                self._register_locked(request)
            to_enqueue.append((shard, query.query_id))

    # -- pending bookkeeping hooks ------------------------------------------------------

    def _add_pending(self, query: ir.EntangledQuery) -> None:
        shard = self.shard_of(query)
        shard.pool[query.query_id] = query
        shard.index.add_query(query)

    def _remove_pending(self, query_id: str) -> None:
        shard = self.shard_of(self._requests[query_id].query)
        query = shard.pool.pop(query_id)
        shard.index.remove_query(query)
        self._evict_match_plan(query_id)

    # -- deferred completion callbacks ---------------------------------------------------

    @contextmanager
    def _callbacks_after_locks(self):
        """Collect done-callbacks fired inside and invoke them lock-free after."""
        if getattr(self._deferred_callbacks, "queue", None) is not None:
            yield  # nested scope: the outermost one flushes
            return
        queue: list[tuple[Callable[[CoordinationRequest], None], CoordinationRequest]] = []
        self._deferred_callbacks.queue = queue
        try:
            yield
        finally:
            self._deferred_callbacks.queue = None
            for fn, request in queue:
                self._invoke_done_callback(fn, request)

    def _fire_done_callbacks_locked(self, request: CoordinationRequest) -> None:
        queue = getattr(self._deferred_callbacks, "queue", None)
        if queue is None:
            super()._fire_done_callbacks_locked(request)
            return
        queue.extend(
            (fn, request) for fn in self._done_callbacks.pop(request.query_id, ())
        )

    # -- event processing (worker side) -------------------------------------------------

    def _process_events(self, shard: QueryShard, triggers: list[str]) -> None:
        """Drain one shard's event batch: dirty sweep first, then each trigger.

        Each attempt is exception-isolated: one poisoned event must not
        abandon the rest of the batch (the failure is recorded on the worker
        pool either way).
        """
        with self._callbacks_after_locks():
            with self._db_lock:
                self.statistics.increment(match_events=len(triggers))
                trigger_set = set(triggers)
                with shard.lock:
                    dirty = shard.dirty
                    shard.dirty = False
                    sweep = (
                        [qid for qid in shard.pool if qid not in trigger_set]
                        if dirty
                        else []
                    )
                if dirty:
                    self.statistics.increment(retry_sweeps=1)
                seen: set[str] = set()
                for query_id in sweep + triggers:
                    if query_id in seen:
                        continue
                    seen.add(query_id)
                    try:
                        self._attempt_for(shard, query_id)
                    except Exception as exc:  # noqa: BLE001 - isolate poisoned events
                        self._workers.record_error(exc)
        # Workers are a natural checkpoint safe point: no locks held here.
        self._maybe_checkpoint()

    def _attempt_for(self, shard: QueryShard, query_id: str) -> Optional[ExecutionOutcome]:
        """One match attempt for a (possibly already gone) resident of ``shard``.

        Requires ``self._db_lock``.  Shard-local first; a failed local attempt
        escalates to the global pass whenever cross-shard residents exist,
        because a coordination chain can only reach another shard through one
        of them.
        """
        if shard is self._global_shard:
            return self._global_attempt(query_id)
        with shard.lock:
            trigger = shard.pool.get(query_id)
            if trigger is None:
                return None
            group = self._select_group(trigger, shard.pool, shard.index)
            self._note_match_attempt(trigger, group, pool_size=len(shard.pool))
            if group is not None:
                return self._execute_group_sharded(group)
        if len(self._global_shard.pool) > 0:
            return self._global_attempt(query_id)
        return None

    def _global_attempt(self, query_id: str) -> Optional[ExecutionOutcome]:
        """A match pass over the union of every shard (all locks, fixed order)."""
        with ExitStack() as stack:
            for candidate in self._all_shards:
                stack.enter_context(candidate.lock)
            pool = _CompositePool(self._all_shards)
            trigger = pool.get(query_id)
            if trigger is None:
                return None
            self.statistics.increment(cross_shard_passes=1)
            index = _CompositeIndex([candidate.index for candidate in self._all_shards])
            group = self._select_group(trigger, pool, index)
            self._note_match_attempt(trigger, group, pool_size=len(pool))
            if group is not None:
                return self._execute_group_sharded(group)
        return None

    def _execute_group_sharded(self, group: MatchedGroup) -> Optional[ExecutionOutcome]:
        """Execute and finalize; caller holds the db lock and the members' shards."""
        outcome = self._run_executor(group)
        if outcome is None:
            return None
        with self._lock:
            return self._finalize_outcome_locked(outcome)

    # -- retries -----------------------------------------------------------------------

    def _on_data_change(self, table_name: str, kind: str) -> None:
        if getattr(self._executing, "active", False):
            return
        if self._is_coordination_table(table_name):
            return
        if kind in ("insert", "update", "delete", "truncate"):
            now = time.monotonic()
            for shard in self._all_shards:
                with shard.lock:
                    if not shard.dirty:
                        shard.dirty = True
                        shard.dirty_since = now
            # wake idle workers so the idle-sweep backstop can notice
            self._workers.kick()

    def retry_pending(self) -> int:
        """Synchronously re-attempt every pending query across all shards."""
        with self._lock:
            answered_before = self.statistics.queries_answered
        with self._callbacks_after_locks():
            with self._db_lock:
                for shard in self._all_shards:
                    with shard.lock:
                        resident_ids = list(shard.pool.keys())
                    for query_id in resident_ids:
                        self._attempt_for(shard, query_id)
        self._maybe_checkpoint()
        with self._lock:
            return self.statistics.queries_answered - answered_before

    # -- cancellation ------------------------------------------------------------------

    def cancel(self, query_id: str) -> None:
        with self._lock:
            request = self._requests.get(query_id)
        if request is None:
            raise QueryNotPendingError(query_id)
        shard = self.shard_of(request.query)
        # Taking the shard lock first serialises against an in-flight match
        # attempt: after we hold it the query is either answered (typed
        # error) or safely removable.
        with self._callbacks_after_locks():
            with shard.lock, self._lock:
                if request.status is QueryStatus.ANSWERED:
                    raise QueryAlreadyAnsweredError(query_id)
                if request.status is not QueryStatus.PENDING or query_id not in shard.pool:
                    raise QueryNotPendingError(query_id)
                # journal before the pool mutation (see the base cancel())
                if self.journal is not None:
                    self.journal.log_cancel(query_id)
                query = shard.pool.pop(query_id)
                shard.index.remove_query(query)
                self._evict_match_plan(query_id)
                self._cancel_registered_locked(request)
        self._maybe_checkpoint()

    # -- durability overrides ----------------------------------------------------------

    @contextmanager
    def _all_coordination_locks(self) -> Iterator[None]:
        """db lock → every shard lock (ascending, global last) → request lock.

        The full lock set freezes every state transition: submissions (shard
        + request locks), match passes (db lock), cancellations and waits.
        Used for checkpoints and for replaying recovery records onto a system
        whose worker pool is already running.
        """
        with ExitStack() as stack:
            stack.enter_context(self._db_lock)
            for shard in self._all_shards:
                stack.enter_context(shard.lock)
            stack.enter_context(self._lock)
            yield

    _checkpoint_locks = _all_coordination_locks
    _recovery_commit_locks = _all_coordination_locks

    @contextmanager
    def _registration_scope(self, query: ir.EntangledQuery) -> Iterator[None]:
        shard = self.shard_of(query)
        with shard.lock, self._lock:
            yield

    def _discard_pending(self, query_id: str) -> None:
        request = self._requests.get(query_id)
        if request is None:
            return
        shard = self.shard_of(request.query)
        query = shard.pool.pop(query_id, None)
        if query is not None:
            shard.index.remove_query(query)
            self._evict_match_plan(query_id)

    def mark_all_dirty(self) -> None:
        """Arm retry sweeps on every populated shard (end of recovery).

        The idle-sweep backstop then re-attempts recovered pending queries in
        the background, which is how a group whose crash fell between its
        match and its commit record gets re-matched.
        """
        now = time.monotonic()
        any_pending = False
        for shard in self._all_shards:
            with shard.lock:
                if shard.pool:
                    shard.dirty = True
                    shard.dirty_since = now
                    any_pending = True
        if any_pending:
            self._workers.kick()

    # -- inspection --------------------------------------------------------------------

    def pending_queries(self) -> list[ir.EntangledQuery]:
        pending: list[ir.EntangledQuery] = []
        for shard in self._all_shards:
            with shard.lock:
                pending.extend(shard.pool.values())
        return pending

    def pending_count(self) -> int:
        return sum(self._shard_pending(shard) for shard in self._all_shards)

    def _shard_pending(self, shard: QueryShard) -> int:
        with shard.lock:
            return len(shard.pool)

    def provider_index_size(self) -> int:
        total = 0
        for shard in self._all_shards:
            with shard.lock:
                total += len(shard.index)
        return total

    def shard_stats(self) -> list[dict[str, int]]:
        stats: list[dict[str, int]] = []
        for shard in self._all_shards:
            with shard.lock:
                entry = {
                    "shard": shard.shard_id,
                    "pending": len(shard.pool),
                    "index_size": len(shard.index),
                    "dirty": int(shard.dirty),
                    "cross_shard": int(shard is self._global_shard),
                }
            entry["queued_events"] = self._workers.queued(shard)
            stats.append(entry)
        return stats

    @property
    def worker_pool(self) -> MatchWorkerPool:
        return self._workers

    # -- lifecycle ---------------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every enqueued match event has been processed."""
        return self._workers.drain(timeout)

    def shutdown(self) -> None:
        """Stop the worker pool (idempotent; queued events are abandoned)."""
        self._workers.shutdown()
        super().shutdown()
