"""Event bus for coordination lifecycle notifications.

**Role**: the observation seam of the coordination component — every state
transition a registered query goes through (registered, match attempted,
group matched, answered, cancelled, rejected, timed out, execution failed)
is published here as a typed :class:`Event`.

**Paper correspondence**: Section 3.1 of the demo paper, where users are
notified "via a Facebook message" when their coordination request succeeds.
Internally that notification is just a subscription to coordination events;
the travel application's mailbox, the admin interface's activity log and the
tests all observe the system through this bus.  Subscribers run
synchronously inside coordination and must not call back into the
coordinator (use the service layer's done-callbacks for that).
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class EventType(enum.Enum):
    """Lifecycle events emitted by the coordination component."""

    QUERY_REGISTERED = "query_registered"
    QUERY_REJECTED = "query_rejected"
    MATCH_ATTEMPTED = "match_attempted"
    GROUP_MATCHED = "group_matched"
    QUERY_ANSWERED = "query_answered"
    QUERY_CANCELLED = "query_cancelled"
    QUERY_TIMED_OUT = "query_timed_out"
    EXECUTION_FAILED = "execution_failed"
    SNAPSHOT_TAKEN = "snapshot_taken"
    RECOVERY_COMPLETED = "recovery_completed"


_event_counter = itertools.count(1)


@dataclass(frozen=True)
class Event:
    """One coordination event.

    ``payload`` carries event-specific data such as the query id, the group's
    query ids, or the answer tuples; see the coordinator for the exact keys
    emitted per event type.
    """

    type: EventType
    payload: dict[str, Any] = field(default_factory=dict)
    sequence: int = field(default_factory=lambda: next(_event_counter))
    timestamp: float = field(default_factory=time.time)

    @property
    def query_id(self) -> Optional[str]:
        return self.payload.get("query_id")


Subscriber = Callable[[Event], None]


class EventBus:
    """A tiny synchronous publish/subscribe hub with bounded history."""

    def __init__(self, history_limit: int = 10_000) -> None:
        self._subscribers: list[tuple[Optional[EventType], Subscriber]] = []
        self._history: list[Event] = []
        self._history_limit = history_limit
        self._lock = threading.RLock()

    def subscribe(self, subscriber: Subscriber, event_type: Optional[EventType] = None) -> None:
        """Register ``subscriber``; a ``None`` event type receives everything."""
        with self._lock:
            self._subscribers.append((event_type, subscriber))

    def unsubscribe(self, subscriber: Subscriber) -> None:
        with self._lock:
            # Equality (not identity) so that bound methods — which Python
            # recreates on every attribute access — can be unsubscribed too.
            self._subscribers = [
                (event_type, existing)
                for event_type, existing in self._subscribers
                if existing != subscriber
            ]

    def publish(self, event_type: EventType, **payload: Any) -> Event:
        event = Event(type=event_type, payload=payload)
        with self._lock:
            self._history.append(event)
            if len(self._history) > self._history_limit:
                self._history = self._history[-self._history_limit :]
            subscribers = list(self._subscribers)
        for wanted_type, subscriber in subscribers:
            if wanted_type is None or wanted_type is event_type:
                subscriber(event)
        return event

    def history(self, event_type: Optional[EventType] = None) -> list[Event]:
        with self._lock:
            events = list(self._history)
        if event_type is None:
            return events
        return [event for event in events if event.type is event_type]

    def clear_history(self) -> None:
        with self._lock:
            self._history.clear()
