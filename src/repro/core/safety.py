"""Static analysis of entangled queries: safety and uniqueness (origin) checks.

**Role**: the admission control of the coordination component — every query
is analysed here before it may enter the pending pool, so the matcher only
ever sees queries it can evaluate in polynomial time.

**Paper correspondence**: Section 2.1 of the demo paper introduces the
language restrictions; the companion technical paper ("Entangled queries",
SIGMOD 2011) restricts the language to a fragment where evaluation is
tractable.  Two conditions matter in practice and both are checked here
before a query is admitted to the pending pool:

* **Safety** (range restriction): every variable that appears in a head atom,
  in an answer-constraint atom or in a residual predicate must be bound by a
  domain constraint (``x IN (SELECT ...)``).  Without this, grounding a query
  could require guessing values out of thin air.

* **Uniqueness / origin**: every answer-constraint atom must be *groundable
  from the query's own valuation* — i.e. all of its variables must also occur
  in the query's domain constraints or head atoms.  This is what lets the
  matcher treat an answer atom as a concrete "request" that some partner
  query's head must fulfil, rather than an open formula; it is the practical
  counterpart of the origin/uniqueness property the paper's polynomial
  matching algorithm relies on.

The analyzer never mutates queries; it returns an :class:`AnalysisReport` and
raises :class:`~repro.errors.SafetyError` / :class:`~repro.errors.UniquenessError`
from :func:`check` when asked to enforce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import ir
from repro.errors import SafetyError, UniquenessError


@dataclass(frozen=True)
class AnalysisReport:
    """Outcome of statically analysing one entangled query."""

    query_id: str
    safe: bool
    unique: bool
    unsafe_variables: tuple[str, ...] = ()
    non_origin_atoms: tuple[str, ...] = ()
    warnings: tuple[str, ...] = field(default=())

    @property
    def admissible(self) -> bool:
        """Whether the query may enter the coordination pool."""
        return self.safe and self.unique


def analyze(query: ir.EntangledQuery) -> AnalysisReport:
    """Run the safety and uniqueness analysis without raising."""
    domain_variables = set(query.domain_variables())

    needed = set(query.head_variables()) | set(query.answer_variables())
    for predicate in query.predicates:
        needed.update(predicate.variables)
    unsafe = tuple(sorted(needed - domain_variables))

    determined = domain_variables | set(query.head_variables())
    non_origin: list[str] = []
    for atom in query.answer_atoms:
        atom_variables = {variable.name for variable in atom.variables()}
        if not atom_variables <= determined:
            non_origin.append(str(atom))

    warnings: list[str] = []
    # Duplicate variables across multiple domain constraints are legal (they
    # intersect the domains) but often indicate a typo; surface them.
    seen: set[str] = set()
    for domain in query.domains:
        for name in domain.variables:
            if name in seen:
                warnings.append(
                    f"variable {name!r} is constrained by more than one domain; "
                    "the domains are intersected"
                )
            seen.add(name)
    # Heads that are entirely constant never coordinate on data values.
    for atom in query.heads:
        if not atom.variables() and query.answer_atoms:
            warnings.append(
                f"head {atom} is fully constant; coordination only affects whether "
                "it is answered, not which values it receives"
            )

    return AnalysisReport(
        query_id=query.query_id,
        safe=not unsafe,
        unique=not non_origin,
        unsafe_variables=unsafe,
        non_origin_atoms=tuple(non_origin),
        warnings=tuple(warnings),
    )


def check(query: ir.EntangledQuery) -> AnalysisReport:
    """Analyse ``query`` and raise if it is not admissible."""
    report = analyze(query)
    if not report.safe:
        raise SafetyError(
            f"query {query.query_id} is unsafe: variable(s) "
            f"{', '.join(report.unsafe_variables)} are not bound by any "
            "'x IN (SELECT ...)' domain constraint"
        )
    if not report.unique:
        raise UniquenessError(
            f"query {query.query_id} violates the origin condition: answer "
            f"constraint(s) {', '.join(report.non_origin_atoms)} contain variables "
            "that are not determined by the query's own domains or heads"
        )
    return report


def _atom_compatible(required: ir.Atom, provided: ir.Atom) -> bool:
    """Could ``provided`` (a head) possibly instantiate to satisfy ``required``?

    Necessary condition only: relation and arity agree, and wherever *both*
    atoms carry constants the constants are equal.  Variable positions are
    always compatible (grounding may still fail later).
    """
    if required.relation.lower() != provided.relation.lower():
        return False
    if required.arity != provided.arity:
        return False
    for left_term, right_term in zip(required.terms, provided.terms):
        if isinstance(left_term, ir.Constant) and isinstance(right_term, ir.Constant):
            if left_term.value != right_term.value:
                return False
    return True


def mutual_match_possible(left: ir.EntangledQuery, right: ir.EntangledQuery) -> bool:
    """Quick structural necessary condition for two queries to coordinate.

    Used by the admin interface's match-graph view: an edge is drawn between
    two pending queries when (a) every answer constraint of either query has a
    structurally compatible provider head within the pair, and (b) at least one
    constraint is provided *across* the pair (otherwise the queries are simply
    independent).  Grounding against the database may of course still fail.
    """
    pair = (left, right)

    cross_edge = False
    for query in pair:
        for required in query.answer_atoms:
            providers = [
                (provider, head)
                for provider in pair
                for head in provider.heads
                if _atom_compatible(required, head)
            ]
            if not providers:
                return False
            if any(provider is not query for provider, _head in providers):
                cross_edge = True
    if not (left.answer_atoms or right.answer_atoms):
        return False
    return cross_edge
