"""The paper's primary contribution: entangled queries and coordination.

Public surface (also re-exported from the top-level :mod:`repro` package):

* :class:`~repro.core.system.YoutopiaSystem` — the assembled system facade
* :class:`~repro.core.session.YoutopiaSession` — per-user sessions
* :class:`~repro.core.compiler.EntangledQueryBuilder`, :func:`~repro.core.compiler.var`,
  :func:`~repro.core.compiler.compile_entangled`
* the IR types in :mod:`repro.core.ir`
* :class:`~repro.core.coordinator.Coordinator` / :class:`~repro.core.coordinator.QueryStatus`
* :class:`~repro.core.matching.Matcher` and :class:`~repro.core.baseline.ExhaustiveEvaluator`
"""

from repro.core import ir
from repro.core.answer import AnswerRelationRegistry, AnswerRelationSpec
from repro.core.baseline import ExhaustiveEvaluator
from repro.core.compiler import EntangledQueryBuilder, compile_entangled, entangled_to_sql, var
from repro.core.config import SystemConfig
from repro.core.coordinator import CoordinationRequest, Coordinator, QueryStatus
from repro.core.durability import (
    DurabilityManager,
    RecoveryReport,
    WriteAheadLog,
    read_wal,
)
from repro.core.events import Event, EventBus, EventType
from repro.core.executor import ExecutionOutcome, JointExecutor
from repro.core.matching import MatchedGroup, Matcher, ProviderIndex, Unifier
from repro.core.matchplan import GridProviderIndex, MatchPlanCache, QueryPlan
from repro.core.safety import AnalysisReport, analyze, check
from repro.core.session import YoutopiaSession
from repro.core.sharding import (
    MatchWorkerPool,
    QueryShard,
    ShardedCoordinator,
    relation_signature,
    route_signature,
    shard_for_relation,
)
from repro.core.stats import CoordinationStatistics
from repro.core.system import YoutopiaSystem
from repro.core.transactions import TransactionManager

__all__ = [
    "AnalysisReport",
    "AnswerRelationRegistry",
    "AnswerRelationSpec",
    "CoordinationRequest",
    "CoordinationStatistics",
    "Coordinator",
    "DurabilityManager",
    "EntangledQueryBuilder",
    "Event",
    "EventBus",
    "EventType",
    "ExecutionOutcome",
    "ExhaustiveEvaluator",
    "GridProviderIndex",
    "JointExecutor",
    "MatchPlanCache",
    "MatchWorkerPool",
    "MatchedGroup",
    "Matcher",
    "ProviderIndex",
    "QueryPlan",
    "QueryShard",
    "QueryStatus",
    "RecoveryReport",
    "ShardedCoordinator",
    "SystemConfig",
    "TransactionManager",
    "Unifier",
    "WriteAheadLog",
    "YoutopiaSession",
    "YoutopiaSystem",
    "analyze",
    "check",
    "compile_entangled",
    "entangled_to_sql",
    "ir",
    "read_wal",
    "relation_signature",
    "route_signature",
    "shard_for_relation",
    "var",
]
