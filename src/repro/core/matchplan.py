"""Compiled match plans and the grid-style multi-attribute provider index.

The interpreted matcher pays a per-attempt tax on every unification: it
re-derives each atom's constant positions, allocates a ``(query_id, name)``
tuple per variable touched, and dispatches on term types position by
position.  This module precompiles all of that once per query:

* :class:`CompiledAtom` — one atom of one query, lowered to positional slot
  arrays: a constant mask, interned constant values and precomputed variable
  nodes, all computed once when the query's plan is built.
* :class:`QueryPlan` — the compiled form of a whole query (heads, answer
  atoms, the variable list the grounding phase iterates).
* :class:`PairOps` — the unification of one (probe atom, provider atom) pair
  reduced to a short list of ``bind`` / ``union`` operations against the
  union-find, with constant/constant agreement folded into a single
  precomputed ``compatible`` flag.  Pair programs are memoized on the probe
  atom, so a pool that is re-probed every sweep (the steady state of a
  pending pool) executes straight-line slot operations instead of
  re-interpreting terms.
* :class:`MatchPlanCache` — the per-coordinator plan store, keyed by query
  id.  Plans are *derived* state: they are built lazily on first use, evicted
  when their query leaves the pool, rebuilt transparently after WAL recovery
  (the identity check in :meth:`MatchPlanCache.plan_for` notices the
  recompiled query object), and never journaled.
* :class:`GridProviderIndex` — a grid-file-style replacement for the
  single-key :class:`~repro.core.matching.ProviderIndex` (see *Using Grid
  Files for a Relational DBMS*): every column of every relation signature
  keeps its own ordered buckets, a probe intersects the candidate sets of
  *all* its bound columns, and the intersection is seeded from the most
  selective column instead of scanning the whole (relation, arity) bucket.

Determinism contract: for any pool state, :meth:`GridProviderIndex.candidates`
returns exactly the same provider list — same members, same order — as
``ProviderIndex.candidates``: providers in query arrival order.  The matcher's
randomised exploration consumes its RNG identically under every
``match_plan`` × ``provider_index`` combination, which is what the
differential fuzz harness (``tests/integration/test_sharded_fuzz.py``)
asserts.

Concurrency: plan compilation, execution and eviction are all performed while
the coordinator holds the locks that already serialise matching (the inline
coordinator's lock, or the sharded coordinator's db/shard locks), so the
cache needs no locking of its own.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from itertools import count
from typing import Any, Optional

from repro.core import ir

# A variable is identified globally by (query_id, variable_name) — the same
# node representation repro.core.matching.Unifier uses.
VarNode = tuple[str, str]

#: Valid values of ``SystemConfig.match_plan``.
MATCH_PLAN_MODES = ("compiled", "interpreted")
#: Valid values of ``SystemConfig.provider_index``.
PROVIDER_INDEX_KINDS = ("grid", "single_key")


@dataclass(frozen=True)
class Provider:
    """A head atom that can satisfy answer constraints: (query, head position)."""

    query_id: str
    head_index: int


def _intern(value: Any) -> Any:
    """Intern string constants so hot-path equality is pointer-fast."""
    if type(value) is str:
        return sys.intern(value)
    return value


class CompiledAtom:
    """One atom lowered to positional slot arrays.

    ``const_mask[i]`` says whether position ``i`` is a constant; ``slots[i]``
    holds the interned constant value for constant positions and the
    precomputed :data:`VarNode` for variable positions.  ``uid`` is unique per
    compiled atom instance and keys the pair-program memo of *other* atoms
    probing this one; uids are never reused, so a stale memo entry can never
    alias a newly compiled atom.
    """

    __slots__ = ("uid", "query_id", "atom", "key", "const_mask", "slots", "const_items", "pair_cache")

    def __init__(self, uid: int, query_id: str, atom: ir.Atom) -> None:
        self.uid = uid
        self.query_id = query_id
        self.atom = atom
        self.key = (sys.intern(atom.relation.lower()), atom.arity)
        const_mask = []
        slots: list[Any] = []
        const_items = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, ir.Constant):
                value = _intern(term.value)
                const_mask.append(True)
                slots.append(value)
                const_items.append((position, value))
            else:
                const_mask.append(False)
                slots.append((query_id, term.name))
        self.const_mask = tuple(const_mask)
        self.slots = tuple(slots)
        self.const_items = tuple(const_items)
        # Pair programs against provider atoms this atom has probed, keyed by
        # the provider atom's uid.  Lives on the probe side so evicting a
        # query's plan also frees every pair program it accumulated.
        self.pair_cache: dict[int, PairOps] = {}


class PairOps:
    """The unification of one (probe, provider) atom pair, precompiled.

    ``compatible`` folds relation/arity agreement and every constant/constant
    comparison; ``binds`` are (variable node, constant) bindings and
    ``unions`` are (node, node) class merges.  Executing the program against a
    :class:`~repro.core.matching.Unifier` is equivalent to
    ``Unifier.unify_atoms`` on the original atoms — unification is a
    conjunction of equality constraints, so applying binds before unions
    cannot change satisfiability.
    """

    __slots__ = ("compatible", "binds", "unions")

    def __init__(
        self,
        compatible: bool,
        binds: tuple[tuple[VarNode, Any], ...] = (),
        unions: tuple[tuple[VarNode, VarNode], ...] = (),
    ) -> None:
        self.compatible = compatible
        self.binds = binds
        self.unions = unions


_INCOMPATIBLE = PairOps(False)


def compile_pair(probe: CompiledAtom, provider: CompiledAtom) -> PairOps:
    """Precompile the unification of ``probe`` against ``provider``'s head."""
    if probe.key != provider.key:
        return _INCOMPATIBLE
    binds: list[tuple[VarNode, Any]] = []
    unions: list[tuple[VarNode, VarNode]] = []
    probe_mask = probe.const_mask
    provider_mask = provider.const_mask
    for position in range(len(probe_mask)):
        probe_slot = probe.slots[position]
        provider_slot = provider.slots[position]
        if probe_mask[position]:
            if provider_mask[position]:
                if probe_slot != provider_slot:
                    return _INCOMPATIBLE
            else:
                binds.append((provider_slot, probe_slot))
        elif provider_mask[position]:
            binds.append((probe_slot, provider_slot))
        else:
            unions.append((probe_slot, provider_slot))
    return PairOps(True, tuple(binds), tuple(unions))


def apply_pair(unifier: Any, ops: PairOps) -> bool:
    """Run a pair program against a live unifier (caller marks/undoes)."""
    if not ops.compatible:
        return False
    for node, value in ops.binds:
        if not unifier.bind(node, value):
            return False
    for left, right in ops.unions:
        if not unifier.union(left, right):
            return False
    return True


class QueryPlan:
    """The compiled form of one entangled query."""

    __slots__ = ("query", "query_id", "heads", "answer_atoms", "var_items", "node_map")

    def __init__(self, query: ir.EntangledQuery, uids: "count[int]") -> None:
        self.query = query
        self.query_id = query.query_id
        self.heads = tuple(
            CompiledAtom(next(uids), query.query_id, atom) for atom in query.heads
        )
        self.answer_atoms = tuple(
            CompiledAtom(next(uids), query.query_id, atom) for atom in query.answer_atoms
        )
        # The grounding phase iterates every variable of the query per
        # attempt; precompute the (name, node) pairs and the name → node map
        # once instead of building frozensets and tuples each time.
        self.var_items = tuple(
            (name, (query.query_id, name)) for name in query.variables()
        )
        self.node_map: dict[str, VarNode] = dict(self.var_items)


class MatchPlanCache:
    """Per-coordinator store of :class:`QueryPlan` objects, keyed by query id.

    Plans are built on first use and evicted when their query leaves the pool
    (answered / cancelled / recovered as terminal).  ``plan_for`` re-checks
    object identity: WAL recovery recompiles a pending query's IR from its
    journaled SQL, and the recompiled object must get a fresh plan even
    though it reuses the query id.  ``invalidate_all`` drops every plan —
    called when an answer relation is (re)declared, so no plan can outlive
    the relation metadata it was compiled against.
    """

    def __init__(self) -> None:
        self._plans: dict[str, QueryPlan] = {}
        self._uids = count(1)
        self.plans_compiled = 0
        self.plan_hits = 0
        self.pair_ops_compiled = 0
        self.pair_ops_hits = 0
        self.plans_evicted = 0
        self.invalidations = 0

    def plan_for(self, query: ir.EntangledQuery) -> QueryPlan:
        plan = self._plans.get(query.query_id)
        if plan is not None and plan.query is query:
            self.plan_hits += 1
            return plan
        plan = QueryPlan(query, self._uids)
        self._plans[query.query_id] = plan
        self.plans_compiled += 1
        return plan

    def pair_ops(self, probe: CompiledAtom, provider: CompiledAtom) -> PairOps:
        ops = probe.pair_cache.get(provider.uid)
        if ops is None:
            ops = compile_pair(probe, provider)
            probe.pair_cache[provider.uid] = ops
            self.pair_ops_compiled += 1
        else:
            self.pair_ops_hits += 1
        return ops

    def evict(self, query_id: str) -> None:
        if self._plans.pop(query_id, None) is not None:
            self.plans_evicted += 1

    def invalidate_all(self) -> None:
        if self._plans:
            self._plans.clear()
        self.invalidations += 1

    def __len__(self) -> int:
        return len(self._plans)

    def statistics(self) -> dict[str, int]:
        """Numeric counters (merged into the coordinator's matching stats)."""
        return {
            "plans_cached": len(self._plans),
            "plans_compiled": self.plans_compiled,
            "plan_cache_hits": self.plan_hits,
            "pair_ops_compiled": self.pair_ops_compiled,
            "pair_ops_hits": self.pair_ops_hits,
            "plans_evicted": self.plans_evicted,
            "plan_invalidations": self.invalidations,
        }


# ---------------------------------------------------------------------------
# Grid-style multi-attribute provider index
# ---------------------------------------------------------------------------


class GridProviderIndex:
    """Multi-attribute provider index with per-column ordered buckets.

    Where ``ProviderIndex`` refines its (relation, arity) bucket by building a
    fresh ``set`` per bound column and then rescanning the *whole* relation
    bucket to restore arrival order, this index keeps, for every column of
    every relation signature, an ordered bucket per constant value plus one
    for the providers with a variable there.  Every bucket maps
    ``Provider → seq`` where ``seq`` is the provider's global insertion
    number, so any subset can be replayed in arrival order without touching
    the relation bucket at all.

    A probe with bound columns intersects those columns' candidate sets
    grid-file style: the *most selective* column (smallest constant bucket +
    variable bucket) seeds the result, gets sorted by ``seq`` — restoring
    arrival order over just the survivors — and the remaining bound columns
    filter by dict membership.  Cost is proportional to the most selective
    column, not to the relation bucket.

    The returned candidate list is identical (members *and* order) to what
    ``ProviderIndex.candidates`` returns for the same pool state; the
    differential fuzz harness depends on this.  ``use_constant_index=False``
    degrades to the naive (relation, arity) scan, like the single-key index.
    """

    def __init__(self, use_constant_index: bool = True) -> None:
        self.use_constant_index = use_constant_index
        self._seq = count()
        self._by_relation: dict[tuple[str, int], dict[Provider, int]] = {}
        self._const_columns: dict[tuple[str, int, int, Any], dict[Provider, int]] = {}
        self._var_columns: dict[tuple[str, int, int], dict[Provider, int]] = {}
        self._atoms: dict[Provider, ir.Atom] = {}

    # -- maintenance ---------------------------------------------------------------

    def add_query(self, query: ir.EntangledQuery) -> None:
        for head_index, atom in enumerate(query.heads):
            provider = Provider(query.query_id, head_index)
            seq = next(self._seq)
            key = (atom.relation.lower(), atom.arity)
            self._by_relation.setdefault(key, {})[provider] = seq
            self._atoms[provider] = atom
            for position, term in enumerate(atom.terms):
                if isinstance(term, ir.Constant):
                    column = (*key, position, _intern(term.value))
                    self._const_columns.setdefault(column, {})[provider] = seq
                else:
                    self._var_columns.setdefault((*key, position), {})[provider] = seq

    def remove_query(self, query: ir.EntangledQuery) -> None:
        for head_index, atom in enumerate(query.heads):
            provider = Provider(query.query_id, head_index)
            key = (atom.relation.lower(), atom.arity)
            bucket = self._by_relation.get(key)
            if bucket is not None:
                bucket.pop(provider, None)
            self._atoms.pop(provider, None)
            for position, term in enumerate(atom.terms):
                if isinstance(term, ir.Constant):
                    column = self._const_columns.get((*key, position, term.value))
                else:
                    column = self._var_columns.get((*key, position))
                if column is not None:
                    column.pop(provider, None)

    def __len__(self) -> int:
        return len(self._atoms)

    # -- probing -------------------------------------------------------------------

    def atom_of(self, provider: Provider) -> ir.Atom:
        return self._atoms[provider]

    def candidates(self, atom: ir.Atom) -> list[Provider]:
        return self._candidates(
            (atom.relation.lower(), atom.arity), atom.constants()
        )

    def candidates_compiled(self, probe: CompiledAtom) -> list[Provider]:
        """Probe with a :class:`CompiledAtom` (constant items precomputed)."""
        return self._candidates(probe.key, probe.const_items)

    def _candidates(
        self, key: tuple[str, int], const_items: tuple[tuple[int, Any], ...]
    ) -> list[Provider]:
        bucket = self._by_relation.get(key)
        if not bucket:
            return []
        if not self.use_constant_index or not const_items:
            return list(bucket)

        # One (constant bucket, variable bucket) pair per bound column; an
        # empty pair means no provider can match that column at all.
        columns: list[
            tuple[int, Optional[dict[Provider, int]], Optional[dict[Provider, int]]]
        ] = []
        for position, value in const_items:
            const_bucket = self._const_columns.get((*key, position, value))
            var_bucket = self._var_columns.get((*key, position))
            size = (len(const_bucket) if const_bucket else 0) + (
                len(var_bucket) if var_bucket else 0
            )
            if size == 0:
                return []
            columns.append((size, const_bucket, var_bucket))

        if len(columns) > 1:
            columns.sort(key=lambda column: column[0])

        # Seed from the most selective column, restoring arrival order by seq.
        _, const_bucket, var_bucket = columns[0]
        if const_bucket and var_bucket:
            seed = [(seq, provider) for provider, seq in const_bucket.items()]
            seed.extend((seq, provider) for provider, seq in var_bucket.items())
            seed.sort(key=lambda item: item[0])
            ordered = [provider for _, provider in seed]
        elif const_bucket:
            ordered = list(const_bucket)
        else:
            assert var_bucket is not None
            ordered = list(var_bucket)

        if len(columns) == 1:
            return ordered
        rest = columns[1:]
        survivors: list[Provider] = []
        for provider in ordered:
            for _, other_const, other_var in rest:
                if (other_const is None or provider not in other_const) and (
                    other_var is None or provider not in other_var
                ):
                    break
            else:
                survivors.append(provider)
        return survivors
