"""The matching algorithm of the coordination component.

Given a newly arrived (or retried) entangled query — the *trigger* — and the
pool of pending queries, the matcher looks for a group of queries that can be
answered jointly:

1. **Structural phase.**  Every answer-constraint atom of every query in the
   group must be *provided by* a head atom of some query in the group
   (possibly the same query).  Providers are found through a
   (relation, arity, constant-position) index over the pool's head atoms and
   the pairing is checked by unification: constants must agree positionally
   and variables across queries are merged into equivalence classes.

2. **Grounding phase.**  Once a structurally consistent group is found, the
   matcher grounds it against the database: for each query it enumerates the
   valuations allowed by its ``x IN (SELECT ...)`` domain constraints and
   residual predicates, and searches for a joint assignment that respects the
   variable equivalence classes established during unification.  ``CHOOSE 1``
   means one valuation per query.

The search is backtracking over both phases, so a group that unifies but has
no consistent grounding is abandoned and alternative providers are explored.
The answer relation produced by a successful match contains exactly the
instantiated head atoms of the group — the *minimality* requirement of the
semantics — and every answer constraint is satisfied by construction because
it was unified with one of those heads.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.core import ir
from repro.core.matchplan import (
    CompiledAtom,
    GridProviderIndex,
    MatchPlanCache,
    Provider,
    QueryPlan,
    apply_pair,
)
from repro.errors import EntanglementError
from repro.relalg.engine import QueryEngine
from repro.relalg.rows import RowEnv
from repro.sqlparser.pretty import format_statement

# A variable is identified globally by (query_id, variable_name).
VarNode = tuple[str, str]

_UNBOUND = object()

__all__ = [
    "GridProviderIndex",
    "MatchPlanCache",
    "MatchStatistics",
    "MatchedGroup",
    "Matcher",
    "Provider",
    "ProviderIndex",
    "Unifier",
    "VarNode",
    "build_provider_index",
]


class Unifier:
    """Union-find over query-scoped variables with constant binding and undo.

    The structural phase needs cheap backtracking, so every mutating operation
    appends an undo record to a trail; :meth:`mark` / :meth:`undo_to` restore
    any earlier state.  Path compression is deliberately not used — classes are
    tiny (a handful of variables per coordination group) and skipping it keeps
    the trail trivially correct.
    """

    def __init__(self) -> None:
        self._parent: dict[VarNode, VarNode] = {}
        self._value: dict[VarNode, Any] = {}
        self._trail: list[tuple[str, VarNode, Any]] = []

    # -- bookkeeping ---------------------------------------------------------------

    def mark(self) -> int:
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        while len(self._trail) > mark:
            kind, node, previous = self._trail.pop()
            if kind == "parent":
                if previous is None:
                    del self._parent[node]
                else:
                    self._parent[node] = previous
            else:  # value
                if previous is _UNBOUND:
                    self._value.pop(node, None)
                else:
                    self._value[node] = previous

    # -- core operations --------------------------------------------------------------

    def find(self, node: VarNode) -> VarNode:
        while node in self._parent:
            node = self._parent[node]
        return node

    def value_of(self, node: VarNode) -> Any:
        """The constant bound to the node's class, or ``_UNBOUND``."""
        return self._value.get(self.find(node), _UNBOUND)

    def bind(self, node: VarNode, value: Any) -> bool:
        root = self.find(node)
        current = self._value.get(root, _UNBOUND)
        if current is not _UNBOUND:
            return current == value
        self._trail.append(("value", root, _UNBOUND))
        self._value[root] = value
        return True

    def union(self, left: VarNode, right: VarNode) -> bool:
        root_left = self.find(left)
        root_right = self.find(right)
        if root_left == root_right:
            return True
        value_left = self._value.get(root_left, _UNBOUND)
        value_right = self._value.get(root_right, _UNBOUND)
        if value_left is not _UNBOUND and value_right is not _UNBOUND and value_left != value_right:
            return False
        self._trail.append(("parent", root_left, None))
        self._parent[root_left] = root_right
        if value_left is not _UNBOUND and value_right is _UNBOUND:
            self._trail.append(("value", root_right, _UNBOUND))
            self._value[root_right] = value_left
        return True

    def unify_terms(
        self, query_left: str, term_left: ir.Term, query_right: str, term_right: ir.Term
    ) -> bool:
        """Unify two terms belonging to (possibly different) queries."""
        left_is_const = isinstance(term_left, ir.Constant)
        right_is_const = isinstance(term_right, ir.Constant)
        if left_is_const and right_is_const:
            return term_left.value == term_right.value
        if left_is_const:
            return self.bind((query_right, term_right.name), term_left.value)
        if right_is_const:
            return self.bind((query_left, term_left.name), term_right.value)
        return self.union((query_left, term_left.name), (query_right, term_right.name))

    def unify_atoms(
        self, query_left: str, atom_left: ir.Atom, query_right: str, atom_right: ir.Atom
    ) -> bool:
        if atom_left.relation.lower() != atom_right.relation.lower():
            return False
        if atom_left.arity != atom_right.arity:
            return False
        for term_left, term_right in zip(atom_left.terms, atom_right.terms):
            if not self.unify_terms(query_left, term_left, query_right, term_right):
                return False
        return True


# ---------------------------------------------------------------------------
# Provider index
# ---------------------------------------------------------------------------
# ``Provider`` itself is defined in repro.core.matchplan (the grid index needs
# it without importing this module) and re-exported here for compatibility.


class ProviderIndex:
    """Index over the head atoms of pending queries.

    ``candidates(atom)`` returns the providers whose head could possibly unify
    with ``atom``: same relation and arity, and for every constant position of
    ``atom`` the provider has either the same constant or a variable there.
    With ``use_constant_index=False`` the per-constant refinement is skipped
    and only the (relation, arity) bucket is used — this is the "naive" mode
    the ablation benchmark compares against.

    Buckets are insertion-ordered dicts rather than sets, and ``candidates``
    returns a list in the (relation, arity) bucket's insertion order — i.e.
    query arrival order.  The same pool state therefore always produces the
    same candidate sequence, which makes match selection reproducible across
    runs (sets iterate in ``PYTHONHASHSEED``-dependent order).
    """

    def __init__(self, use_constant_index: bool = True) -> None:
        self.use_constant_index = use_constant_index
        self._by_relation: dict[tuple[str, int], dict[Provider, None]] = defaultdict(dict)
        self._by_constant: dict[tuple[str, int, int, Any], dict[Provider, None]] = defaultdict(
            dict
        )
        self._by_variable_position: dict[tuple[str, int, int], dict[Provider, None]] = defaultdict(
            dict
        )
        self._atoms: dict[Provider, ir.Atom] = {}

    # -- maintenance ---------------------------------------------------------------

    def add_query(self, query: ir.EntangledQuery) -> None:
        for head_index, atom in enumerate(query.heads):
            provider = Provider(query.query_id, head_index)
            key = (atom.relation.lower(), atom.arity)
            self._by_relation[key][provider] = None
            self._atoms[provider] = atom
            for position, term in enumerate(atom.terms):
                if isinstance(term, ir.Constant):
                    self._by_constant[(*key, position, term.value)][provider] = None
                else:
                    self._by_variable_position[(*key, position)][provider] = None

    def remove_query(self, query: ir.EntangledQuery) -> None:
        for head_index, atom in enumerate(query.heads):
            provider = Provider(query.query_id, head_index)
            key = (atom.relation.lower(), atom.arity)
            self._by_relation[key].pop(provider, None)
            self._atoms.pop(provider, None)
            for position, term in enumerate(atom.terms):
                if isinstance(term, ir.Constant):
                    self._by_constant[(*key, position, term.value)].pop(provider, None)
                else:
                    self._by_variable_position[(*key, position)].pop(provider, None)

    def __len__(self) -> int:
        return len(self._atoms)

    # -- probing ---------------------------------------------------------------------

    def atom_of(self, provider: Provider) -> ir.Atom:
        return self._atoms[provider]

    def candidates(self, atom: ir.Atom) -> list[Provider]:
        key = (atom.relation.lower(), atom.arity)
        bucket = self._by_relation.get(key)
        if not bucket:
            return []
        if not self.use_constant_index:
            return list(bucket)
        allowed: set[Provider] | None = None
        for position, value in atom.constants():
            compatible = set(self._by_constant.get((*key, position, value), ()))
            compatible.update(self._by_variable_position.get((*key, position), ()))
            allowed = compatible if allowed is None else (allowed & compatible)
            if not allowed:
                return []
        if allowed is None:
            return list(bucket)
        return [provider for provider in bucket if provider in allowed]

    def candidates_compiled(self, probe: CompiledAtom) -> list[Provider]:
        """Probe with a :class:`~repro.core.matchplan.CompiledAtom`.

        Same result (members and order) as :meth:`candidates` on the original
        atom; the compiled form just skips re-deriving the relation key and
        constant positions per attempt.
        """
        key = probe.key
        bucket = self._by_relation.get(key)
        if not bucket:
            return []
        if not self.use_constant_index or not probe.const_items:
            return list(bucket)
        allowed: set[Provider] | None = None
        for position, value in probe.const_items:
            compatible = set(self._by_constant.get((*key, position, value), ()))
            compatible.update(self._by_variable_position.get((*key, position), ()))
            allowed = compatible if allowed is None else (allowed & compatible)
            if not allowed:
                return []
        assert allowed is not None
        return [provider for provider in bucket if provider in allowed]


def build_provider_index(
    kind: str, use_constant_index: bool = True
) -> Union[ProviderIndex, GridProviderIndex]:
    """Construct the provider index selected by ``SystemConfig.provider_index``."""
    if kind == "grid":
        return GridProviderIndex(use_constant_index=use_constant_index)
    if kind == "single_key":
        return ProviderIndex(use_constant_index=use_constant_index)
    from repro.core.matchplan import PROVIDER_INDEX_KINDS

    known = ", ".join(PROVIDER_INDEX_KINDS)
    raise EntanglementError(f"unknown provider_index {kind!r} (known kinds: {known})")


# ---------------------------------------------------------------------------
# Match results and statistics
# ---------------------------------------------------------------------------


@dataclass
class MatchStatistics:
    """Counters describing the work one ``find_group`` call performed."""

    structural_nodes: int = 0
    unification_attempts: int = 0
    grounding_attempts: int = 0
    domain_queries: int = 0
    candidate_providers: int = 0


@dataclass
class MatchedGroup:
    """A successfully matched and grounded group of entangled queries."""

    queries: list[ir.EntangledQuery]
    bindings: dict[str, list[dict[str, Any]]]
    providers: dict[tuple[str, int], Provider]
    statistics: MatchStatistics = field(default_factory=MatchStatistics)

    @property
    def query_ids(self) -> list[str]:
        return [query.query_id for query in self.queries]

    def answers(self) -> list[ir.GroundAnswer]:
        """Per-query ground answers (head tuples under the chosen valuations)."""
        results: list[ir.GroundAnswer] = []
        for query in self.queries:
            tuples: dict[str, list[tuple[Any, ...]]] = defaultdict(list)
            for valuation in self.bindings[query.query_id]:
                for atom in query.heads:
                    tuples[atom.relation].append(atom.substitute(valuation))
            primary = self.bindings[query.query_id][0] if self.bindings[query.query_id] else {}
            results.append(
                ir.GroundAnswer(
                    query_id=query.query_id,
                    binding=dict(primary),
                    tuples={relation: tuple(rows) for relation, rows in tuples.items()},
                )
            )
        return results

    def answer_relation_contents(self) -> dict[str, list[tuple[Any, ...]]]:
        """The tuples the whole group contributes, per answer relation."""
        contents: dict[str, list[tuple[Any, ...]]] = defaultdict(list)
        for answer in self.answers():
            for relation, values in answer.all_tuples():
                contents[relation].append(values)
        return dict(contents)


def _group_signature(group: MatchedGroup) -> tuple[Any, ...]:
    """A hashable identity for a candidate group: members + induced head tuples.

    Two structural search paths that reach the same member set with the same
    grounded answer tuples are the same candidate for policy purposes, so
    enumeration de-duplicates on this key.
    """
    parts = []
    for answer in group.answers():
        relations = tuple(
            (relation, rows)
            for relation, rows in sorted(answer.tuples.items(), key=lambda item: item[0])
        )
        parts.append((answer.query_id, relations))
    parts.sort(key=lambda part: part[0])
    return tuple(parts)


# ---------------------------------------------------------------------------
# The matcher
# ---------------------------------------------------------------------------


class Matcher:
    """Implements the two-phase (unification + grounding) matching algorithm.

    With ``compile_plans=True`` (the default) the structural phase runs over
    precompiled :class:`~repro.core.matchplan.QueryPlan` objects: candidate
    probes use the precomputed relation key and constant positions, and each
    (probe atom, provider atom) unification executes a memoized
    :class:`~repro.core.matchplan.PairOps` program instead of re-interpreting
    the terms.  ``compile_plans=False`` keeps the original per-attempt
    interpretation — retained behind ``SystemConfig(match_plan="interpreted")``
    for differential testing.  Both paths return identical candidate lists,
    consume the RNG identically and therefore find identical groups.
    """

    def __init__(
        self,
        engine: QueryEngine,
        rng: Optional[random.Random] = None,
        max_group_size: int = 32,
        max_structural_nodes: int = 200_000,
        compile_plans: bool = True,
        plan_cache: Optional[MatchPlanCache] = None,
    ) -> None:
        self.engine = engine
        self.rng = rng or random.Random()
        self.max_group_size = max_group_size
        self.max_structural_nodes = max_structural_nodes
        self.plan_cache: Optional[MatchPlanCache] = (
            (plan_cache or MatchPlanCache()) if compile_plans else None
        )

    # -- public API --------------------------------------------------------------------

    def find_group(
        self,
        trigger: ir.EntangledQuery,
        pool: Mapping[str, ir.EntangledQuery],
        index: ProviderIndex,
    ) -> Optional[MatchedGroup]:
        """Search for a matchable group containing ``trigger``.

        ``pool`` must already contain the trigger (keyed by its query id) and
        ``index`` must cover exactly the queries in ``pool``.  Returns ``None``
        when no group can currently be formed — the trigger then stays pending.

        This is the first element of :meth:`enumerate_groups`: the enumeration
        is lazy, so taking only the first candidate performs exactly the work
        the pre-enumeration search did (same node order, same rng draws, same
        early exit on the first grounded group).
        """
        for matched in self.enumerate_groups(trigger, pool, index, limit=1):
            return matched
        return None

    def enumerate_groups(
        self,
        trigger: ir.EntangledQuery,
        pool: Mapping[str, ir.EntangledQuery],
        index: ProviderIndex,
        limit: Optional[int] = None,
    ) -> Iterator[MatchedGroup]:
        """Lazily yield distinct candidate match groups containing ``trigger``.

        Groups are produced in search order (the order the backtracking search
        discovers them) and de-duplicated on their induced answer tuples: two
        structural paths that ground to the same members and the same head
        tuples count once.  ``limit`` bounds how many groups are yielded — the
        search stops as soon as the limit is reached, so enumeration cost is
        proportional to the number of candidates actually requested.  All
        yielded groups share one :class:`MatchStatistics` object describing
        the whole enumeration.
        """
        if trigger.query_id not in pool:
            raise EntanglementError("the trigger query must be part of the pending pool")
        if limit is not None and limit <= 0:
            return
        statistics = MatchStatistics()
        domain_cache: dict[str, list[tuple[Any, ...]]] = {}
        unifier = Unifier()
        group: dict[str, ir.EntangledQuery] = {trigger.query_id: trigger}
        obligations = [
            (trigger.query_id, atom_index)
            for atom_index in range(len(trigger.answer_atoms))
        ]
        providers: dict[tuple[str, int], Provider] = {}
        produced = 0
        seen: set[tuple[Any, ...]] = set()
        for matched in self._search(
            group, obligations, providers, unifier, pool, index, statistics, domain_cache
        ):
            key = _group_signature(matched)
            if key in seen:
                continue
            seen.add(key)
            yield matched
            produced += 1
            if limit is not None and produced >= limit:
                return

    # -- structural phase -----------------------------------------------------------------

    def _search(
        self,
        group: dict[str, ir.EntangledQuery],
        obligations: list[tuple[str, int]],
        providers: dict[tuple[str, int], Provider],
        unifier: Unifier,
        pool: Mapping[str, ir.EntangledQuery],
        index: ProviderIndex,
        statistics: MatchStatistics,
        domain_cache: dict[str, list[tuple[Any, ...]]],
    ) -> Iterator[MatchedGroup]:
        statistics.structural_nodes += 1
        if statistics.structural_nodes > self.max_structural_nodes:
            return

        if not obligations:
            for bindings in self._ground(list(group.values()), unifier, statistics, domain_cache):
                yield MatchedGroup(
                    queries=list(group.values()),
                    bindings=bindings,
                    providers=dict(providers),
                    statistics=statistics,
                )
            return

        query_id, atom_index = obligations[-1]
        cache = self.plan_cache
        probe: Optional[CompiledAtom] = None
        if cache is not None:
            probe = cache.plan_for(group[query_id]).answer_atoms[atom_index]
            compiled_lookup = getattr(index, "candidates_compiled", None)
            if compiled_lookup is not None:
                candidates = compiled_lookup(probe)
            else:  # custom index without a compiled probe surface
                candidates = index.candidates(probe.atom)
        else:
            atom = group[query_id].answer_atoms[atom_index]
            candidates = index.candidates(atom)
        statistics.candidate_providers += len(candidates)

        in_group = [candidate for candidate in candidates if candidate.query_id in group]
        outside = [candidate for candidate in candidates if candidate.query_id not in group]
        self.rng.shuffle(in_group)
        self.rng.shuffle(outside)

        for candidate in in_group + outside:
            provider_query = pool.get(candidate.query_id)
            if provider_query is None:
                continue
            added = False
            if candidate.query_id not in group:
                if len(group) >= self.max_group_size:
                    continue
                added = True

            mark = unifier.mark()
            statistics.unification_attempts += 1
            if cache is not None and probe is not None:
                head = cache.plan_for(provider_query).heads[candidate.head_index]
                unified = apply_pair(unifier, cache.pair_ops(probe, head))
            else:
                head_atom = provider_query.heads[candidate.head_index]
                unified = unifier.unify_atoms(
                    query_id, atom, candidate.query_id, head_atom
                )
            if not unified:
                unifier.undo_to(mark)
                continue

            new_group = group
            new_obligations = obligations[:-1]
            if added:
                new_group = dict(group)
                new_group[candidate.query_id] = provider_query
                new_obligations = new_obligations + [
                    (candidate.query_id, new_index)
                    for new_index in range(len(provider_query.answer_atoms))
                ]

            providers[(query_id, atom_index)] = candidate
            yield from self._search(
                new_group,
                new_obligations,
                providers,
                unifier,
                pool,
                index,
                statistics,
                domain_cache,
            )
            del providers[(query_id, atom_index)]
            unifier.undo_to(mark)

    # -- grounding phase -------------------------------------------------------------------

    def _ground(
        self,
        queries: list[ir.EntangledQuery],
        unifier: Unifier,
        statistics: MatchStatistics,
        domain_cache: dict[str, list[tuple[Any, ...]]],
    ) -> Iterator[dict[str, list[dict[str, Any]]]]:
        statistics.grounding_attempts += 1
        cache = self.plan_cache
        plans = None if cache is None else [cache.plan_for(query) for query in queries]
        yield from self._assign_query(
            0, queries, plans, unifier, {}, {}, statistics, domain_cache
        )

    def _assign_query(
        self,
        position: int,
        queries: list[ir.EntangledQuery],
        plans: Optional[list[QueryPlan]],
        unifier: Unifier,
        class_values: dict[VarNode, Any],
        assignments: dict[str, list[dict[str, Any]]],
        statistics: MatchStatistics,
        domain_cache: dict[str, list[tuple[Any, ...]]],
    ) -> Iterator[dict[str, list[dict[str, Any]]]]:
        if position == len(queries):
            # Snapshot: parent frames keep mutating ``assignments`` as the
            # enumeration backtracks past this yield.
            yield {
                query_id: [dict(valuation) for valuation in chosen]
                for query_id, chosen in assignments.items()
            }
            return
        query = queries[position]
        plan = plans[position] if plans is not None else None

        pre_bound: dict[str, Any] = {}
        var_items: Iterable[tuple[str, VarNode]]
        if plan is not None:
            var_items = plan.var_items
        else:
            var_items = ((name, (query.query_id, name)) for name in query.variables())
        for name, node in var_items:
            constant = unifier.value_of(node)
            if constant is not _UNBOUND:
                pre_bound[name] = constant
                continue
            root = unifier.find(node)
            if root in class_values:
                pre_bound[name] = class_values[root]

        valuations = self._enumerate_valuations(query, pre_bound, statistics, domain_cache)
        self.rng.shuffle(valuations)

        node_map = plan.node_map if plan is not None else None
        for valuation in valuations:
            extended = dict(class_values)
            consistent = True
            for name, value in valuation.items():
                node = node_map[name] if node_map is not None else (query.query_id, name)
                constant = unifier.value_of(node)
                if constant is not _UNBOUND and constant != value:
                    consistent = False
                    break
                root = unifier.find(node)
                if root in extended and extended[root] != value:
                    consistent = False
                    break
                extended[root] = value
            if not consistent:
                continue

            chosen = [valuation]
            if query.choose > 1:
                extra = self._extra_choices(query, valuation, pre_bound, statistics, domain_cache)
                if len(extra) + 1 < query.choose:
                    continue
                chosen = [valuation] + extra[: query.choose - 1]

            assignments[query.query_id] = chosen
            yield from self._assign_query(
                position + 1,
                queries,
                plans,
                unifier,
                extended,
                assignments,
                statistics,
                domain_cache,
            )
            del assignments[query.query_id]

    def _extra_choices(
        self,
        query: ir.EntangledQuery,
        first: dict[str, Any],
        pre_bound: dict[str, Any],
        statistics: MatchStatistics,
        domain_cache: dict[str, list[tuple[Any, ...]]],
    ) -> list[dict[str, Any]]:
        """Additional distinct valuations for ``CHOOSE k`` (k > 1) queries.

        Such queries have no coordination constraints (the compiler enforces
        this), so the extra valuations only need to respect the query's own
        domains and predicates, plus any values fixed by unification.
        """
        others = [
            valuation
            for valuation in self._enumerate_valuations(query, pre_bound, statistics, domain_cache)
            if valuation != first
        ]
        self.rng.shuffle(others)
        # De-duplicate on the induced head tuples, not the raw valuations.
        seen: set[tuple[tuple[Any, ...], ...]] = {
            tuple(atom.substitute(first) for atom in query.heads)
        }
        distinct: list[dict[str, Any]] = []
        for valuation in others:
            signature = tuple(atom.substitute(valuation) for atom in query.heads)
            if signature in seen:
                continue
            seen.add(signature)
            distinct.append(valuation)
        return distinct

    # -- valuation enumeration ------------------------------------------------------------------

    def _enumerate_valuations(
        self,
        query: ir.EntangledQuery,
        pre_bound: dict[str, Any],
        statistics: MatchStatistics,
        domain_cache: dict[str, list[tuple[Any, ...]]],
    ) -> list[dict[str, Any]]:
        """All valuations of ``query``'s variables allowed by its own body."""
        valuations: list[dict[str, Any]] = [dict(pre_bound)]
        for domain in query.domains:
            rows = self._domain_rows(domain, statistics, domain_cache)
            extended: list[dict[str, Any]] = []
            for partial in valuations:
                for row in rows:
                    if len(row) != len(domain.variables):
                        raise EntanglementError(
                            f"domain constraint {domain} produced rows of width {len(row)}"
                        )
                    candidate = dict(partial)
                    compatible = True
                    for name, value in zip(domain.variables, row):
                        if name in candidate and candidate[name] != value:
                            compatible = False
                            break
                        candidate[name] = value
                    if compatible:
                        extended.append(candidate)
            valuations = extended
            if not valuations:
                return []

        if query.predicates:
            evaluator = self.engine.evaluator
            filtered: list[dict[str, Any]] = []
            for valuation in valuations:
                env = RowEnv({name.lower(): value for name, value in valuation.items()})
                if all(
                    evaluator.evaluate_predicate(predicate.expression, env)
                    for predicate in query.predicates
                ):
                    filtered.append(valuation)
            valuations = filtered

        return valuations

    def _domain_rows(
        self,
        domain: ir.DomainConstraint,
        statistics: MatchStatistics,
        domain_cache: dict[str, list[tuple[Any, ...]]],
    ) -> list[tuple[Any, ...]]:
        key = format_statement(domain.subquery)
        if key not in domain_cache:
            statistics.domain_queries += 1
            domain_cache[key] = self.engine.execute(domain.subquery).rows
        return domain_cache[key]
