"""The coordination component: pending-query management and joint answering.

"The coordination component runs whenever an entangled query arrives in the
system.  The coordination logic accesses regular database tables as well as
other internal tables that store the list of pending queries" (demo paper,
Section 2.2).

The :class:`Coordinator` owns the pool of pending entangled queries, a
provider index over their head atoms, the matcher, and the joint executor.
When a query is submitted it is statically checked (safety / uniqueness),
registered, and a match attempt is triggered.  A query whose constraints
cannot yet be satisfied "is not rejected but waits for an opportunity to
retry": it stays in the pool and is reconsidered whenever a new query arrives,
whenever the base data changes (optional), or when :meth:`retry_pending` is
called explicitly.

The pending pool is mirrored into an internal table ``_pending_queries`` so
the administrative interface (and plain SQL) can inspect it, exactly as the
paper describes.
"""

from __future__ import annotations

import dataclasses
import enum
import random
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    MutableMapping,
    Optional,
    Sequence,
    Union,
)

from repro.core import ir
from repro.core.answer import AnswerRelationRegistry
from repro.core.baseline import ExhaustiveEvaluator
from repro.core.compiler import compile_entangled
from repro.core.config import SystemConfig
from repro.core.events import EventBus, EventType
from repro.core.executor import ExecutionOutcome, JointExecutor
from repro.core.matching import MatchedGroup, Matcher, build_provider_index
from repro.core.matchplan import MATCH_PLAN_MODES, MatchPlanCache
from repro.core.policy import (
    FirstMatchPolicy,
    PolicyContext,
    PolicyStatistics,
    get_policy,
    select as select_by_policy,
)
from repro.core.safety import AnalysisReport, check
from repro.core.stats import CoordinationStatistics
from repro.core.tiering import TieringManager
from repro.errors import (
    CoordinationTimeoutError,
    EntanglementError,
    ExecutionError,
    QueryAlreadyAnsweredError,
    QueryNotPendingError,
    StorageError,
    YoutopiaError,
)
from repro.relalg.engine import QueryEngine
from repro.sqlparser import ast
from repro.storage.database import Database

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.durability import DurabilityManager

PENDING_TABLE = "_pending_queries"


class QueryStatus(enum.Enum):
    """Lifecycle states of a registered entangled query."""

    PENDING = "pending"
    ANSWERED = "answered"
    CANCELLED = "cancelled"
    REJECTED = "rejected"


@dataclass
class CoordinationRequest:
    """The handle returned to applications for one submitted entangled query."""

    query: ir.EntangledQuery
    status: QueryStatus = QueryStatus.PENDING
    analysis: Optional[AnalysisReport] = None
    answer: Optional[ir.GroundAnswer] = None
    group_query_ids: tuple[str, ...] = ()
    error: Optional[str] = None
    registered_at: float = field(default_factory=time.time)
    answered_at: Optional[float] = None

    @property
    def query_id(self) -> str:
        return self.query.query_id

    @property
    def owner(self) -> Optional[str]:
        return self.query.owner

    @property
    def is_answered(self) -> bool:
        return self.status is QueryStatus.ANSWERED


class Coordinator:
    """Registers entangled queries and answers matchable groups jointly."""

    def __init__(
        self,
        database: Database,
        engine: QueryEngine,
        registry: AnswerRelationRegistry,
        executor: JointExecutor,
        event_bus: Optional[EventBus] = None,
        rng: Optional[random.Random] = None,
        max_group_size: int = 32,
        use_exhaustive_baseline: bool = False,
        use_constant_index: bool = True,
        auto_retry_on_data_change: bool = False,
        config: Optional[SystemConfig] = None,
    ) -> None:
        if config is None:
            config = SystemConfig(
                max_group_size=max_group_size,
                use_exhaustive_baseline=use_exhaustive_baseline,
                use_constant_index=use_constant_index,
                auto_retry_on_data_change=auto_retry_on_data_change,
            )
        self.config = config
        self.database = database
        self.engine = engine
        self.registry = registry
        self.executor = executor
        self.events = event_bus or EventBus()
        self.statistics = CoordinationStatistics()
        self.rng = rng or random.Random()

        if config.match_plan not in MATCH_PLAN_MODES:
            known = ", ".join(MATCH_PLAN_MODES)
            raise EntanglementError(
                f"unknown match_plan {config.match_plan!r} (known modes: {known})"
            )
        if config.use_exhaustive_baseline:
            self._matcher: Union[Matcher, ExhaustiveEvaluator] = ExhaustiveEvaluator(
                engine, rng=self.rng, max_group_size=min(config.max_group_size, 5)
            )
        else:
            self._matcher = Matcher(
                engine,
                rng=self.rng,
                max_group_size=config.max_group_size,
                compile_plans=config.match_plan == "compiled",
            )
        # build_provider_index validates config.provider_index as a side effect.
        self._index = build_provider_index(
            config.provider_index, use_constant_index=config.use_constant_index
        )

        # Match-selection policy (validated here so a bad name fails at
        # construction, not on the first match attempt).
        self._policy = get_policy(config.match_policy)
        self.policy_statistics = PolicyStatistics(
            config.match_policy, config.policy_candidate_limit
        )

        #: Durability journal (attached by the system after recovery); every
        #: accepted submission, answered group and cancellation is logged
        #: through it while the relevant locks are still held.
        self.journal: Optional["DurabilityManager"] = None

        self._pool: MutableMapping[str, ir.EntangledQuery] = {}
        self._requests: dict[str, CoordinationRequest] = {}
        self._done_callbacks: dict[str, list[Callable[[CoordinationRequest], None]]] = {}
        self._lock = threading.RLock()
        self._answered = threading.Condition(self._lock)
        # Thread-local so a sharded subclass's worker executing a group does
        # not suppress data-change notifications caused by *other* threads.
        self._executing = threading.local()
        self._data_dirty = False

        # Tiered pending pool: with a memory limit, cold queries spill to a
        # pluggable backend and page back in on candidate hits.  The backend
        # opens here — before the system attaches durability and replays the
        # journal — so recovery can resolve snapshot references into it.
        self._tiering: Optional[TieringManager] = None
        if config.pending_memory_limit is not None:
            from repro.storage.backends import create_backend

            backend = create_backend(
                config.cold_store, config.data_dir, config.fsync_policy
            )
            self._tiering = TieringManager(
                backend,
                config.pending_memory_limit,
                eviction_policy=config.eviction_policy,
                on_evict=self._tiering_evicted,
                on_page_in=self._tiering_paged_in,
            )
            self._pool = self._tiering.new_pool()

        self._ensure_pending_table()
        if config.auto_retry_on_data_change:
            self.database.add_listener(self._on_data_change)

    # -- internal bookkeeping tables -------------------------------------------------------

    def _ensure_pending_table(self) -> None:
        self.database.create_table(
            name=PENDING_TABLE,
            columns=[
                ("query_id", "TEXT", False),
                ("owner", "TEXT"),
                ("status", "TEXT", False),
                ("sql", "TEXT"),
                ("registered_at", "REAL"),
            ],
            primary_key=("query_id",),
            if_not_exists=True,
        )

    def _record_pending_row(self, request: CoordinationRequest) -> None:
        self.database.insert_mapping(
            PENDING_TABLE,
            {
                "query_id": request.query_id,
                "owner": request.owner,
                "status": request.status.value,
                "sql": request.query.sql or request.query.describe(),
                "registered_at": request.registered_at,
            },
        )

    def _update_pending_row(self, request: CoordinationRequest) -> None:
        self.database.update_where(
            PENDING_TABLE,
            lambda row: row["query_id"] == request.query_id,
            lambda row: {"status": request.status.value},
        )

    # -- data-change retries ----------------------------------------------------------------

    def _is_coordination_table(self, table_name: str) -> bool:
        """Tables whose changes are coordination side effects, not base data."""
        return table_name.lower() == PENDING_TABLE or table_name in self.registry.names()

    def _on_data_change(self, table_name: str, kind: str) -> None:
        if getattr(self._executing, "active", False):
            return
        if self._is_coordination_table(table_name):
            return
        if kind in ("insert", "update", "delete", "truncate"):
            self._data_dirty = True

    # -- submission ---------------------------------------------------------------------------

    def submit(
        self,
        query: Union[ir.EntangledQuery, ast.EntangledSelect, str],
        owner: Optional[str] = None,
    ) -> CoordinationRequest:
        """Register an entangled query and immediately attempt coordination.

        Returns a :class:`CoordinationRequest` handle.  If the query could be
        coordinated right away its status is already ``ANSWERED``; otherwise it
        remains ``PENDING`` and the caller can :meth:`wait` on it.
        """
        query = self._coerce_query(query, owner)

        request = CoordinationRequest(query=query)
        rejection = self._run_static_checks(request)
        if rejection is not None:
            with self._lock:
                self._requests[query.query_id] = request
                self.statistics.queries_rejected += 1
            self.events.publish(
                EventType.QUERY_REJECTED,
                query_id=query.query_id,
                owner=owner,
                reason=str(rejection),
            )
            raise rejection

        with self._lock:
            if query.query_id in self._pool or query.query_id in self._requests:
                raise EntanglementError(
                    f"a query with id {query.query_id!r} is already registered"
                )
            self._register_locked(request)

            if self._data_dirty:
                self._data_dirty = False
                self._retry_pending_locked(exclude=query.query_id)

            self._attempt_match_locked(query)
        self._maybe_checkpoint()
        return request

    def submit_many(
        self,
        queries: Sequence[Union[ir.EntangledQuery, ast.EntangledSelect, str]],
        owner: Optional[str] = None,
    ) -> list[CoordinationRequest]:
        """Register a batch of entangled queries under one lock acquisition.

        Unlike a loop of :meth:`submit` — which runs a full match pass inline
        for every arrival — the whole batch is registered first and a *single*
        deferred match pass runs afterwards.  Queries answered as part of an
        earlier arrival's group have already left the pool when their turn
        comes, so the pass performs at most one match attempt per answered
        group plus one attempt per query that remains pending (the final retry
        sweep).  On coordination-heavy workloads this roughly halves the number
        of match passes.

        Batch semantics are per-item: a query that fails the static safety /
        uniqueness checks (or reuses an already-registered id) is recorded as
        ``REJECTED`` with its error message instead of raising, and the rest of
        the batch proceeds.  The returned list is parallel to ``queries``.
        """
        compiled = [self._coerce_query(query, owner) for query in queries]

        batch: list[CoordinationRequest] = []
        with self._lock:
            # One group-commit scope around *registration only*: the batch's
            # submit records share a single fsync, but the scope must close
            # before the deferred match pass — a commit record appended
            # inside the scope would defer its fsync past the point where
            # answers become observable (wait(), done callbacks, pushes).
            journal_scope = (
                self.journal.group_commit() if self.journal is not None else nullcontext()
            )
            with journal_scope:
                self._register_compiled_batch_locked(compiled, batch)

            if self._data_dirty:
                self._data_dirty = False
                self._retry_pending_locked()

            # The single deferred match pass, in arrival order.  Members of a
            # group answered by an earlier trigger are no longer in the pool
            # and are skipped without a match attempt.
            for request in batch:
                if request.status is QueryStatus.PENDING and request.query_id in self._pool:
                    self._attempt_match_locked(request.query)
        self._maybe_checkpoint()
        return batch

    def _register_compiled_batch_locked(
        self,
        compiled: Sequence[ir.EntangledQuery],
        batch: list[CoordinationRequest],
    ) -> None:
        """Per-item checked registration for :meth:`submit_many` (lock held)."""
        for query in compiled:
            request = CoordinationRequest(query=query)
            batch.append(request)
            rejection = self._run_static_checks(request)
            if rejection is not None:
                self._requests.setdefault(query.query_id, request)
                self.statistics.queries_rejected += 1
                self.events.publish(
                    EventType.QUERY_REJECTED,
                    query_id=query.query_id,
                    owner=query.owner,
                    reason=str(rejection),
                )
                continue
            if query.query_id in self._pool or query.query_id in self._requests:
                request.status = QueryStatus.REJECTED
                request.error = f"a query with id {query.query_id!r} is already registered"
                self.statistics.queries_rejected += 1
                self.events.publish(
                    EventType.QUERY_REJECTED,
                    query_id=query.query_id,
                    owner=query.owner,
                    reason=request.error,
                )
                continue
            self._register_locked(request)

    @staticmethod
    def _coerce_query(
        query: Union[ir.EntangledQuery, ast.EntangledSelect, str],
        owner: Optional[str],
    ) -> ir.EntangledQuery:
        if not isinstance(query, ir.EntangledQuery):
            return compile_entangled(query, owner=owner)
        if owner is not None and query.owner is None:
            return query.replace_owner(owner)
        return query

    @staticmethod
    def _run_static_checks(request: CoordinationRequest) -> Optional[EntanglementError]:
        """Safety / uniqueness analysis; marks the request REJECTED on failure."""
        try:
            request.analysis = check(request.query)
            return None
        except EntanglementError as exc:
            request.status = QueryStatus.REJECTED
            request.error = str(exc)
            return exc

    def _add_pending(self, query: ir.EntangledQuery) -> None:
        """Insert a query into pending bookkeeping (lock held).

        The sharded coordinator overrides this (and :meth:`_remove_pending`)
        to route the query into the shard owning its relation signature.
        """
        self._pool[query.query_id] = query
        self._index.add_query(query)

    def _register_locked(self, request: CoordinationRequest) -> None:
        """Add a checked request to the pool and index (lock held, no matching)."""
        query = request.query
        # Journal first, while the registration locks are held: the log order
        # equals the registration order, the submission is durable before the
        # caller's submit() returns (acknowledge-after-append), and an append
        # failure propagates *before* any in-memory mutation — a registered
        # but unjournaled query would silently vanish on crash while staying
        # matchable in this process.
        if self.journal is not None:
            self.journal.log_submit(request)
        for atom in list(query.heads) + list(query.answer_atoms):
            self.registry.ensure(atom.relation, atom.arity)
        self._add_pending(query)
        self._requests[query.query_id] = request
        self.statistics.queries_registered += 1
        self.events.publish(
            EventType.QUERY_REGISTERED,
            query_id=query.query_id,
            owner=query.owner,
            sql=query.sql or query.describe(),
        )
        self._record_pending_row(request)

    # -- matching ----------------------------------------------------------------------------------

    def _attempt_match_locked(self, trigger: ir.EntangledQuery) -> Optional[ExecutionOutcome]:
        """Try to coordinate ``trigger`` with the current pool (lock held)."""
        if trigger.query_id not in self._pool:
            return None
        group = self._select_group(trigger, self._pool, self._index)
        self._note_match_attempt(trigger, group, pool_size=len(self._pool))
        if group is None:
            return None
        return self._execute_group_locked(group)

    def _select_group(
        self,
        trigger: ir.EntangledQuery,
        pool: Any,
        index: Any,
    ) -> Optional[MatchedGroup]:
        """Choose one match group for ``trigger`` under the configured policy.

        ``first_match`` (and the exhaustive baseline, which has no enumeration
        seam) short-circuits to the single-group search — the classic path at
        the classic cost.  Other policies enumerate up to
        ``policy_candidate_limit`` candidate groups and pick deterministically.
        """
        matcher = self._matcher
        if isinstance(self._policy, FirstMatchPolicy) or not hasattr(
            matcher, "enumerate_groups"
        ):
            group = matcher.find_group(trigger, pool, index)
            if group is not None:
                self.policy_statistics.record_first_match()
            return group
        limit = max(1, self.config.policy_candidate_limit)
        candidates = list(matcher.enumerate_groups(trigger, pool, index, limit=limit))
        if not candidates:
            return None
        decision = select_by_policy(
            self._policy, candidates, self._policy_context(trigger, candidates)
        )
        self.policy_statistics.record(decision, truncated=len(candidates) >= limit)
        return decision.group

    def _policy_context(
        self, trigger: ir.EntangledQuery, candidates: Sequence[MatchedGroup]
    ) -> PolicyContext:
        """Assemble the per-attempt context the policies score against."""
        priorities: dict[str, float] = {}
        registered_at: dict[str, float] = {}
        # The request map is read under the base lock — sharded workers reach
        # here holding shard locks only, and _finalize_outcome_locked already
        # establishes the shard-locks-then-base-lock ordering.
        with self._lock:
            for group in candidates:
                for query in group.queries:
                    if query.query_id in priorities or query.query_id in registered_at:
                        continue
                    request = self._requests.get(query.query_id)
                    if request is not None:
                        registered_at[query.query_id] = request.registered_at
                    if query.priority is not None:
                        priorities[query.query_id] = float(query.priority)
        return PolicyContext(
            trigger_id=trigger.query_id,
            now=time.time(),
            priorities=priorities,
            registered_at=registered_at,
            cost_attribute=self.config.policy_cost_attribute,
        )

    def _note_match_attempt(
        self, trigger: ir.EntangledQuery, group: Optional[MatchedGroup], pool_size: int
    ) -> None:
        """Record statistics and the MATCH_ATTEMPTED event for one attempt."""
        if group is not None:
            self.statistics.record_match_attempt(True, group.statistics)
        else:
            from repro.core.matching import MatchStatistics

            self.statistics.record_match_attempt(False, MatchStatistics())
        self.events.publish(
            EventType.MATCH_ATTEMPTED,
            query_id=trigger.query_id,
            succeeded=group is not None,
            pool_size=pool_size,
        )

    def _run_executor(self, group: MatchedGroup) -> Optional[ExecutionOutcome]:
        """Joint execution with failure bookkeeping; ``None`` on rollback."""
        self._executing.active = True
        try:
            outcome = self.executor.execute(group)
        except ExecutionError as exc:
            self.statistics.executions_failed += 1
            self.events.publish(
                EventType.EXECUTION_FAILED,
                query_ids=group.query_ids,
                reason=str(exc),
            )
            return None
        finally:
            self._executing.active = False
        return outcome

    def _remove_pending(self, query_id: str) -> None:
        """Drop an answered query from pending bookkeeping (lock held)."""
        query = self._pool.pop(query_id)
        self._index.remove_query(query)
        self._evict_match_plan(query_id)

    # -- tiering hooks -----------------------------------------------------------------

    def _tiering_evicted(self, query_id: str, stub: ir.EntangledQuery) -> None:
        """A pool spilled ``query_id``: release its materialized state.

        Called by the :class:`~repro.core.tiering.TieredPool` under the
        pool's guarding lock (shard lock when sharded).  The request record
        swaps to the structural stub — heads, owner, priority and the exact
        SQL survive, so routing, journaling and wire encoding stay correct —
        and the compiled match plan is dropped with the IR it indexed.
        """
        self._evict_match_plan(query_id)
        with self._lock:
            request = self._requests.get(query_id)
            if request is not None and request.status is QueryStatus.PENDING:
                request.query = stub

    def _tiering_paged_in(self, query_id: str, query: ir.EntangledQuery) -> None:
        """A pool restored ``query_id``: re-point its request at the full IR."""
        with self._lock:
            request = self._requests.get(query_id)
            if request is not None and request.status is QueryStatus.PENDING:
                request.query = query

    # -- match-plan cache lifecycle ----------------------------------------------------

    @property
    def _plan_cache(self) -> Optional[MatchPlanCache]:
        """The matcher's compiled-plan cache (``None`` when interpreted/baseline)."""
        return getattr(self._matcher, "plan_cache", None)

    def _evict_match_plan(self, query_id: str) -> None:
        """Free a departed query's compiled plan (derived state, never journaled)."""
        cache = self._plan_cache
        if cache is not None:
            cache.evict(query_id)

    def invalidate_match_plans(self) -> None:
        """Drop every compiled plan (answer-relation declarations call this).

        Plans are rebuilt lazily on the next match attempt, so invalidation
        is cheap and guarantees no plan outlives the relation metadata it was
        compiled against.
        """
        cache = self._plan_cache
        if cache is not None:
            with self._lock:
                cache.invalidate_all()

    def _finalize_outcome_locked(self, outcome: ExecutionOutcome) -> ExecutionOutcome:
        """Mark every group member answered and notify observers (lock held)."""
        group = outcome.group
        group_ids = tuple(group.query_ids)
        answered_at = time.time()
        # Write-ahead: the commit record is appended before any request flips
        # to ANSWERED, while this thread still holds the locks of every
        # involved shard.  A crash before the append leaves the whole group
        # pending in the log and recovery re-matches it; a crash after
        # replays the identical answers.  A *non-fatal* append failure (disk
        # full on a live system) must NOT abort the finalize: the joint
        # execution already committed its tuples, and leaving the group
        # pending would re-match it later and insert them twice.  The
        # durability degradation is recorded on the journal instead.
        if self.journal is not None:
            try:
                self.journal.log_commit(group_ids, outcome.answers, answered_at)
            except Exception as exc:  # noqa: BLE001 - divergence is worse than a gap
                self.journal.note_append_failure(exc)
        self.statistics.groups_matched += 1
        self.events.publish(
            EventType.GROUP_MATCHED,
            query_ids=list(group_ids),
            relations=sorted(outcome.inserted),
        )
        answered_requests: list[CoordinationRequest] = []
        for answer in outcome.answers:
            request = self._requests[answer.query_id]
            # status flips last: it is the commit point for lock-free readers
            # (the remote server snapshots records without taking this lock),
            # so a record seen as ANSWERED always carries its answer.
            request.answer = answer
            request.group_query_ids = group_ids
            request.answered_at = answered_at
            request.status = QueryStatus.ANSWERED
            self.statistics.queries_answered += 1
            self._remove_pending(answer.query_id)
            self._update_pending_row(request)
            self.events.publish(
                EventType.QUERY_ANSWERED,
                query_id=answer.query_id,
                owner=request.owner,
                tuples={relation: list(values) for relation, values in answer.tuples.items()},
                group=list(group_ids),
            )
            answered_requests.append(request)
        self._answered.notify_all()
        # Callbacks fire only after every group member is marked answered and
        # removed from the pool, so an observer reading a partner's handle
        # (or waiting on it) sees the whole group in its final state.
        for request in answered_requests:
            self._fire_done_callbacks_locked(request)
        return outcome

    def _execute_group_locked(self, group: MatchedGroup) -> Optional[ExecutionOutcome]:
        outcome = self._run_executor(group)
        if outcome is None:
            return None
        return self._finalize_outcome_locked(outcome)

    def retry_pending(self) -> int:
        """Re-attempt coordination for every pending query.

        Useful after base data changed (new flights inserted) without any new
        entangled query arriving.  Returns the number of queries answered.
        """
        with self._lock:
            answered = self._retry_pending_locked()
        self._maybe_checkpoint()
        return answered

    def _retry_pending_locked(self, exclude: Optional[str] = None) -> int:
        answered_before = self.statistics.queries_answered
        for query_id in list(self._pool.keys()):
            if query_id == exclude or query_id not in self._pool:
                continue
            self._attempt_match_locked(self._pool[query_id])
        return self.statistics.queries_answered - answered_before

    # -- waiting / cancellation -------------------------------------------------------------------------

    def wait(self, query_id: str, timeout: Optional[float] = None) -> ir.GroundAnswer:
        """Block until ``query_id`` is answered; raise on timeout or cancellation."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                request = self._requests.get(query_id)
                if request is None:
                    raise QueryNotPendingError(query_id)
                if request.status is QueryStatus.ANSWERED:
                    assert request.answer is not None
                    return request.answer
                if request.status in (QueryStatus.CANCELLED, QueryStatus.REJECTED):
                    raise EntanglementError(
                        f"query {query_id!r} is {request.status.value}: {request.error or ''}"
                    )
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.statistics.queries_timed_out += 1
                        self.events.publish(EventType.QUERY_TIMED_OUT, query_id=query_id)
                        # deadline is only set for a non-None timeout: report
                        # the caller's actual value, 0 included.
                        raise CoordinationTimeoutError(query_id, timeout)
                self._answered.wait(remaining)

    def wait_many(
        self, query_ids: Iterable[str], timeout: Optional[float] = None
    ) -> dict[str, ir.GroundAnswer]:
        """Block until every query in ``query_ids`` is answered.

        ``timeout`` bounds the *total* wait, not each query's.  Returns a
        ``query_id -> GroundAnswer`` mapping; raises like :meth:`wait` for the
        first query that times out, was cancelled or rejected.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        answers: dict[str, ir.GroundAnswer] = {}
        for query_id in query_ids:
            remaining = None if deadline is None else max(deadline - time.monotonic(), 0.0)
            answers[query_id] = self.wait(query_id, timeout=remaining)
        return answers

    # -- completion callbacks ---------------------------------------------------------------------------

    def add_done_callback(
        self, query_id: str, fn: Callable[[CoordinationRequest], None]
    ) -> None:
        """Invoke ``fn(request)`` once ``query_id`` reaches a terminal state.

        If the query is already answered, cancelled or rejected the callback
        fires immediately (in the calling thread); otherwise it fires in the
        thread whose submission answers the group, or in the cancelling
        thread.  Exceptions raised by callbacks are swallowed — a broken
        observer must not abort coordination for the rest of the group.
        """
        with self._lock:
            request = self._requests.get(query_id)
            if request is None:
                raise QueryNotPendingError(query_id)
            if request.status is QueryStatus.PENDING:
                self._done_callbacks.setdefault(query_id, []).append(fn)
                return
        self._invoke_done_callback(fn, request)

    def _fire_done_callbacks_locked(self, request: CoordinationRequest) -> None:
        for fn in self._done_callbacks.pop(request.query_id, ()):
            self._invoke_done_callback(fn, request)

    @staticmethod
    def _invoke_done_callback(
        fn: Callable[[CoordinationRequest], None], request: CoordinationRequest
    ) -> None:
        try:
            fn(request)
        except Exception:  # noqa: BLE001 - observer failures must not poison the pool
            pass

    def cancel(self, query_id: str) -> None:
        """Withdraw a pending query from the pool.

        Raises :class:`~repro.errors.QueryAlreadyAnsweredError` when the query
        was already matched — its group's effects are durable and the request
        record must not be mutated — and the plain
        :class:`~repro.errors.QueryNotPendingError` for unknown, cancelled or
        rejected queries.
        """
        with self._lock:
            request = self._requests.get(query_id)
            if request is None:
                raise QueryNotPendingError(query_id)
            if request.status is QueryStatus.ANSWERED:
                raise QueryAlreadyAnsweredError(query_id)
            if query_id not in self._pool:
                raise QueryNotPendingError(query_id)
            # journal before the pool mutation: an append failure must leave
            # the query cleanly pending (still cancellable), not popped from
            # the pool with a PENDING status nobody can resolve
            if self.journal is not None:
                self.journal.log_cancel(query_id)
            self._remove_pending(query_id)
            self._cancel_registered_locked(request)
        self._maybe_checkpoint()

    def _cancel_registered_locked(self, request: CoordinationRequest) -> None:
        """Shared cancellation bookkeeping once the query left its pool.

        The caller journals the cancel record *before* removing the query
        from its pool (see :meth:`cancel`), so an append failure cannot
        strand a popped-but-still-PENDING zombie.
        """
        request.status = QueryStatus.CANCELLED
        self.statistics.queries_cancelled += 1
        self._update_pending_row(request)
        self.events.publish(
            EventType.QUERY_CANCELLED, query_id=request.query_id, owner=request.owner
        )
        self._fire_done_callbacks_locked(request)
        self._answered.notify_all()

    # -- durability: checkpointing ----------------------------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        """Cut a snapshot when enough WAL records accumulated (safe point).

        Called only from points where this thread holds no coordinator locks;
        the checkpoint itself re-acquires everything it needs.  Failures are
        recorded on the journal instead of raised: the triggering operation
        (submit/cancel/...) already succeeded durably, and surfacing a
        snapshot-write error as *its* failure would make remote clients
        retry an accepted submission.
        """
        journal = self.journal
        if journal is not None and journal.snapshot_due():
            try:
                self.checkpoint(only_if_due=True)
            except Exception as exc:  # noqa: BLE001 - background maintenance
                journal.note_checkpoint_failure(exc)

    def checkpoint(self, only_if_due: bool = False) -> bool:
        """Snapshot the full recoverable state and truncate the WAL.

        Returns ``False`` when no journal is attached.  The capture and the
        log truncation happen under every lock a state transition would need
        (checkpoint lock first, then the coordination locks), so the snapshot
        is a consistent cut: no record can land between the captured state
        and the truncation.  ``only_if_due`` re-checks the snapshot trigger
        *inside* the locks — concurrent ``_maybe_checkpoint`` callers that
        all saw the interval crossed would otherwise each cut a redundant
        full snapshot back to back.
        """
        journal = self.journal
        if journal is None or journal.closed:
            return False
        with journal.checkpoint_scope():
            with self._checkpoint_locks():
                if only_if_due and not journal.snapshot_due():
                    return False
                state = self._capture_state_locked()
                last_lsn = journal.install_checkpoint(state)
                pending = len(self._pool)
        self.events.publish(EventType.SNAPSHOT_TAKEN, last_lsn=last_lsn, pending=pending)
        return True

    @contextmanager
    def _checkpoint_locks(self) -> Iterator[None]:
        """Every lock a consistent capture needs (overridden when sharded)."""
        with self._lock:
            yield

    def _capture_state_locked(self) -> dict[str, Any]:
        """The snapshot payload: tables, declarations, requests, counters."""
        from repro.core.durability import SNAPSHOT_VERSION, encode_request

        tables: list[dict[str, Any]] = []
        for table in self.database.tables():
            if table.name.lower() == PENDING_TABLE:
                continue  # rebuilt from the recovered requests on load
            schema = table.schema
            tables.append(
                {
                    "name": schema.name,
                    "columns": [
                        {"name": c.name, "type": c.type.value, "nullable": c.nullable}
                        for c in schema.columns
                    ],
                    "primary_key": list(schema.primary_key),
                    "rows": [list(row) for row in table.rows()],
                    "indexes": [
                        {
                            "name": index.name,
                            "columns": [
                                schema.columns[position].name
                                for position in index.column_positions
                            ],
                            "unique": index.unique,
                        }
                        for index in table.indexes().values()
                        if index.name != "__pk__"
                    ],
                }
            )
        requests_state: list[dict[str, Any]] = []
        for request in self._requests.values():
            entry = encode_request(request)
            if (
                self._tiering is not None
                and request.status is QueryStatus.PENDING
                and self._tiering.is_cold(request.query_id)
            ):
                # The spill store *is* checkpointed state: reference the
                # cold entry instead of re-serializing it.  recover_request
                # resolves the reference from the backend; sync() below
                # makes every referenced payload durable before the
                # snapshot file itself is written.
                entry["sql"] = None
                entry["residence"] = "cold"
            requests_state.append(entry)
        if self._tiering is not None:
            self._tiering.sync()
        return {
            "version": SNAPSHOT_VERSION,
            "tables": tables,
            "answer_relations": self.registry.names(),
            "requests": requests_state,
            "counters": self.statistics.as_dict(),
        }

    # -- durability: recovery application ---------------------------------------------------------------

    @contextmanager
    def _registration_scope(self, query: ir.EntangledQuery) -> Iterator[None]:
        """The locks guarding one query's pending bookkeeping (overridable)."""
        del query
        with self._lock:
            yield

    def recover_request(self, state: dict[str, Any]) -> bool:
        """Rebuild one request from its journaled/snapshotted state.

        Pending requests re-enter the pool and provider index (the indexes
        are derived state and are rebuilt rather than deserialized); terminal
        ones only restore their record and bookkeeping row.  Idempotent by
        query id; returns whether anything was applied.  Never journals —
        recovery runs before the journal is attached.
        """
        query_id = str(state["query_id"])
        with self._lock:
            if query_id in self._requests:
                return False
        owner = state.get("owner")
        sql = state.get("sql")
        priority = state.get("priority")
        if not sql and state.get("residence") == "cold" and self._tiering is not None:
            # The snapshot referenced this query's cold-store payload rather
            # than re-serializing it.  Resolve the reference: the query
            # re-enters the pool hot, and natural eviction re-spills past
            # the memory budget — which is how hot/cold placement is
            # rebuilt after a crash.
            payload = self._tiering.backend.get(query_id)
            if payload is not None:
                from repro.storage.backends import decode_payload

                try:
                    decoded = decode_payload(payload)
                except StorageError:
                    decoded = None
                if decoded is not None:
                    sql = decoded.get("sql")
                    owner = decoded.get("owner") or owner
                    if decoded.get("priority") is not None:
                        priority = decoded["priority"]
        query: Optional[ir.EntangledQuery] = None
        if sql:
            try:
                query = dataclasses.replace(
                    compile_entangled(str(sql), owner=owner), query_id=query_id
                )
                if priority is not None:
                    query = dataclasses.replace(query, priority=float(priority))
            except YoutopiaError:
                query = None
        if query is None:
            # No (usable) SQL was recorded; keep the identity so terminal
            # history survives, but the query cannot re-enter the pool.
            query = ir.EntangledQuery(query_id=query_id, heads=(), owner=owner)
        request = CoordinationRequest(query=query)
        if state.get("registered_at"):
            request.registered_at = float(state["registered_at"])
        status = QueryStatus(str(state.get("status", "pending")))

        if status is QueryStatus.PENDING and query.heads:
            rejection = self._run_static_checks(request)
            if rejection is None:
                with self._registration_scope(query):
                    for atom in list(query.heads) + list(query.answer_atoms):
                        self.registry.ensure(atom.relation, atom.arity)
                    self._add_pending(query)
                    self._requests[query_id] = request
                    self.statistics.queries_registered += 1
                    self._record_pending_row(request)
                return True
            status = QueryStatus.REJECTED
        elif status is QueryStatus.PENDING:
            # The journaled SQL could not be recompiled: a pending request
            # that cannot re-enter the pool must not recover as a phantom
            # (wait() would hang forever and cancel() would raise); surface
            # it as rejected with a diagnosable error instead.
            status = QueryStatus.REJECTED
            request.error = (
                f"recovery could not recompile query {query_id!r} from its "
                f"journaled SQL or cold-store payload; the request cannot "
                f"re-enter the pending pool"
            )

        request.status = status
        request.error = state.get("error") or request.error
        request.group_query_ids = tuple(state.get("group") or ())
        if state.get("answered_at"):
            request.answered_at = float(state["answered_at"])
        answer = state.get("answer")
        if answer is not None:
            from repro.service.remote import codec

            request.answer = codec.decode_answer(query_id, answer)
        with self._lock:
            self._requests[query_id] = request
        if status is not QueryStatus.REJECTED:
            self._record_pending_row(request)
        return True

    def apply_recovered_commit(
        self,
        group_ids: tuple[str, ...],
        answers: Sequence[ir.GroundAnswer],
        answered_at: float,
    ) -> int:
        """Replay one commit record: re-insert answer tuples, flip statuses.

        Skips members that are already answered (replay idempotence) or
        unknown (a snapshot always contains every request, so this only
        happens for damaged logs).  Returns the number of requests applied.
        """
        applied = 0
        with self._recovery_commit_locks():
            for answer in answers:
                request = self._requests.get(answer.query_id)
                if request is None or request.status is QueryStatus.ANSWERED:
                    continue
                for relation, relation_tuples in answer.tuples.items():
                    for values in relation_tuples:
                        self.registry.ensure(relation, len(values))
                        self.registry.insert(relation, values)
                request.answer = answer
                request.group_query_ids = tuple(group_ids)
                request.answered_at = answered_at or time.time()
                request.status = QueryStatus.ANSWERED
                self.statistics.queries_answered += 1
                self._discard_pending(answer.query_id)
                self._update_pending_row(request)
                applied += 1
            if applied:
                self.statistics.groups_matched += 1
                self._answered.notify_all()
        return applied

    def apply_recovered_cancel(self, query_id: str) -> bool:
        """Replay one cancel record (idempotent)."""
        with self._recovery_commit_locks():
            request = self._requests.get(query_id)
            if request is None or request.status is not QueryStatus.PENDING:
                return False
            request.status = QueryStatus.CANCELLED
            self.statistics.queries_cancelled += 1
            self._discard_pending(query_id)
            self._update_pending_row(request)
            self._answered.notify_all()
        return True

    @contextmanager
    def _recovery_commit_locks(self) -> Iterator[None]:
        """Locks for replaying commits/cancels (overridden when sharded)."""
        with self._lock:
            yield

    def _discard_pending(self, query_id: str) -> None:
        """Drop a query from pending bookkeeping if (still) resident."""
        if query_id in self._pool:
            self._remove_pending(query_id)

    def mark_all_dirty(self) -> None:
        """Arm a retry sweep for the whole pool (end of recovery).

        A crash between a match's execution and its commit record leaves the
        group pending again; marking everything dirty makes the next arrival
        (or an explicit retry) re-attempt it.
        """
        with self._lock:
            if self._pool:
                self._data_dirty = True

    # -- inspection ------------------------------------------------------------------------------------------

    def request(self, query_id: str) -> CoordinationRequest:
        with self._lock:
            request = self._requests.get(query_id)
            if request is None:
                raise QueryNotPendingError(query_id)
            return request

    def status(self, query_id: str) -> QueryStatus:
        return self.request(query_id).status

    def pending_queries(self) -> list[ir.EntangledQuery]:
        with self._lock:
            return list(self._pool.values())

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pool)

    def requests(self) -> list[CoordinationRequest]:
        with self._lock:
            return list(self._requests.values())

    def answers(self, relation: str) -> list[tuple[Any, ...]]:
        """The current contents of an answer relation."""
        return self.registry.tuples(relation)

    def provider_index_size(self) -> int:
        with self._lock:
            return len(self._index)

    def matching_statistics(self) -> dict[str, Any]:
        """The match-policy stats block plus match-plan / index configuration.

        Numeric plan-cache counters merge additively across cluster nodes;
        the ``match_plan`` / ``provider_index`` strings are reported like the
        policy name (``"mixed"`` when nodes disagree).
        """
        stats = self.policy_statistics.as_dict()
        stats["match_plan"] = self.config.match_plan
        stats["provider_index"] = self.config.provider_index
        cache = self._plan_cache
        if cache is not None:
            stats.update(cache.statistics())
        return stats

    def tiering_statistics(self) -> dict[str, Any]:
        """The ``ServiceStats.tiering`` block.

        ``{"enabled": False}`` without a memory limit; otherwise hot/cold
        residency, eviction/page-in counters and page-in latency.  Counter
        reads are lock-free — they are monotonic ints mutated under pool
        locks, and a slightly stale stats block is fine.
        """
        if self._tiering is None:
            return {"enabled": False}
        return self._tiering.statistics()

    def shard_stats(self) -> list[dict[str, int]]:
        """Per-shard introspection; the inline coordinator is one big shard."""
        with self._lock:
            return [
                {
                    "shard": 0,
                    "pending": len(self._pool),
                    "index_size": len(self._index),
                    "queued_events": 0,
                    "dirty": int(self._data_dirty),
                    "cross_shard": 0,
                }
            ]

    # -- lifecycle (uniform surface with the sharded coordinator) ----------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until no match events are queued or in flight.

        The inline coordinator matches synchronously inside ``submit``, so
        there is never queued work; this exists so callers can treat both
        coordinator flavours uniformly.
        """
        del timeout
        return True

    def shutdown(self) -> None:
        """Release background matching resources and close the cold store.

        Runs after the system's final checkpoint, so every payload a
        snapshot references has already been synced.
        """
        if self._tiering is not None:
            self._tiering.close()
