"""The coordination component: pending-query management and joint answering.

"The coordination component runs whenever an entangled query arrives in the
system.  The coordination logic accesses regular database tables as well as
other internal tables that store the list of pending queries" (demo paper,
Section 2.2).

The :class:`Coordinator` owns the pool of pending entangled queries, a
provider index over their head atoms, the matcher, and the joint executor.
When a query is submitted it is statically checked (safety / uniqueness),
registered, and a match attempt is triggered.  A query whose constraints
cannot yet be satisfied "is not rejected but waits for an opportunity to
retry": it stays in the pool and is reconsidered whenever a new query arrives,
whenever the base data changes (optional), or when :meth:`retry_pending` is
called explicitly.

The pending pool is mirrored into an internal table ``_pending_queries`` so
the administrative interface (and plain SQL) can inspect it, exactly as the
paper describes.
"""

from __future__ import annotations

import enum
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.core import ir
from repro.core.answer import AnswerRelationRegistry
from repro.core.baseline import ExhaustiveEvaluator
from repro.core.compiler import compile_entangled
from repro.core.config import SystemConfig
from repro.core.events import EventBus, EventType
from repro.core.executor import ExecutionOutcome, JointExecutor
from repro.core.matching import MatchedGroup, Matcher, ProviderIndex
from repro.core.safety import AnalysisReport, check
from repro.core.stats import CoordinationStatistics
from repro.errors import (
    CoordinationTimeoutError,
    EntanglementError,
    ExecutionError,
    QueryAlreadyAnsweredError,
    QueryNotPendingError,
)
from repro.relalg.engine import QueryEngine
from repro.sqlparser import ast
from repro.storage.database import Database

PENDING_TABLE = "_pending_queries"


class QueryStatus(enum.Enum):
    """Lifecycle states of a registered entangled query."""

    PENDING = "pending"
    ANSWERED = "answered"
    CANCELLED = "cancelled"
    REJECTED = "rejected"


@dataclass
class CoordinationRequest:
    """The handle returned to applications for one submitted entangled query."""

    query: ir.EntangledQuery
    status: QueryStatus = QueryStatus.PENDING
    analysis: Optional[AnalysisReport] = None
    answer: Optional[ir.GroundAnswer] = None
    group_query_ids: tuple[str, ...] = ()
    error: Optional[str] = None
    registered_at: float = field(default_factory=time.time)
    answered_at: Optional[float] = None

    @property
    def query_id(self) -> str:
        return self.query.query_id

    @property
    def owner(self) -> Optional[str]:
        return self.query.owner

    @property
    def is_answered(self) -> bool:
        return self.status is QueryStatus.ANSWERED


class Coordinator:
    """Registers entangled queries and answers matchable groups jointly."""

    def __init__(
        self,
        database: Database,
        engine: QueryEngine,
        registry: AnswerRelationRegistry,
        executor: JointExecutor,
        event_bus: Optional[EventBus] = None,
        rng: Optional[random.Random] = None,
        max_group_size: int = 32,
        use_exhaustive_baseline: bool = False,
        use_constant_index: bool = True,
        auto_retry_on_data_change: bool = False,
        config: Optional[SystemConfig] = None,
    ) -> None:
        if config is None:
            config = SystemConfig(
                max_group_size=max_group_size,
                use_exhaustive_baseline=use_exhaustive_baseline,
                use_constant_index=use_constant_index,
                auto_retry_on_data_change=auto_retry_on_data_change,
            )
        self.config = config
        self.database = database
        self.engine = engine
        self.registry = registry
        self.executor = executor
        self.events = event_bus or EventBus()
        self.statistics = CoordinationStatistics()
        self.rng = rng or random.Random()

        if config.use_exhaustive_baseline:
            self._matcher: Union[Matcher, ExhaustiveEvaluator] = ExhaustiveEvaluator(
                engine, rng=self.rng, max_group_size=min(config.max_group_size, 5)
            )
        else:
            self._matcher = Matcher(engine, rng=self.rng, max_group_size=config.max_group_size)
        self._index = ProviderIndex(use_constant_index=config.use_constant_index)

        self._pool: dict[str, ir.EntangledQuery] = {}
        self._requests: dict[str, CoordinationRequest] = {}
        self._done_callbacks: dict[str, list[Callable[[CoordinationRequest], None]]] = {}
        self._lock = threading.RLock()
        self._answered = threading.Condition(self._lock)
        # Thread-local so a sharded subclass's worker executing a group does
        # not suppress data-change notifications caused by *other* threads.
        self._executing = threading.local()
        self._data_dirty = False

        self._ensure_pending_table()
        if config.auto_retry_on_data_change:
            self.database.add_listener(self._on_data_change)

    # -- internal bookkeeping tables -------------------------------------------------------

    def _ensure_pending_table(self) -> None:
        self.database.create_table(
            name=PENDING_TABLE,
            columns=[
                ("query_id", "TEXT", False),
                ("owner", "TEXT"),
                ("status", "TEXT", False),
                ("sql", "TEXT"),
                ("registered_at", "REAL"),
            ],
            primary_key=("query_id",),
            if_not_exists=True,
        )

    def _record_pending_row(self, request: CoordinationRequest) -> None:
        self.database.insert_mapping(
            PENDING_TABLE,
            {
                "query_id": request.query_id,
                "owner": request.owner,
                "status": request.status.value,
                "sql": request.query.sql or request.query.describe(),
                "registered_at": request.registered_at,
            },
        )

    def _update_pending_row(self, request: CoordinationRequest) -> None:
        self.database.update_where(
            PENDING_TABLE,
            lambda row: row["query_id"] == request.query_id,
            lambda row: {"status": request.status.value},
        )

    # -- data-change retries ----------------------------------------------------------------

    def _is_coordination_table(self, table_name: str) -> bool:
        """Tables whose changes are coordination side effects, not base data."""
        return table_name.lower() == PENDING_TABLE or table_name in self.registry.names()

    def _on_data_change(self, table_name: str, kind: str) -> None:
        if getattr(self._executing, "active", False):
            return
        if self._is_coordination_table(table_name):
            return
        if kind in ("insert", "update", "delete", "truncate"):
            self._data_dirty = True

    # -- submission ---------------------------------------------------------------------------

    def submit(
        self,
        query: Union[ir.EntangledQuery, ast.EntangledSelect, str],
        owner: Optional[str] = None,
    ) -> CoordinationRequest:
        """Register an entangled query and immediately attempt coordination.

        Returns a :class:`CoordinationRequest` handle.  If the query could be
        coordinated right away its status is already ``ANSWERED``; otherwise it
        remains ``PENDING`` and the caller can :meth:`wait` on it.
        """
        query = self._coerce_query(query, owner)

        request = CoordinationRequest(query=query)
        rejection = self._run_static_checks(request)
        if rejection is not None:
            with self._lock:
                self._requests[query.query_id] = request
                self.statistics.queries_rejected += 1
            self.events.publish(
                EventType.QUERY_REJECTED,
                query_id=query.query_id,
                owner=owner,
                reason=str(rejection),
            )
            raise rejection

        with self._lock:
            if query.query_id in self._pool or query.query_id in self._requests:
                raise EntanglementError(
                    f"a query with id {query.query_id!r} is already registered"
                )
            self._register_locked(request)

            if self._data_dirty:
                self._data_dirty = False
                self._retry_pending_locked(exclude=query.query_id)

            self._attempt_match_locked(query)
        return request

    def submit_many(
        self,
        queries: Sequence[Union[ir.EntangledQuery, ast.EntangledSelect, str]],
        owner: Optional[str] = None,
    ) -> list[CoordinationRequest]:
        """Register a batch of entangled queries under one lock acquisition.

        Unlike a loop of :meth:`submit` — which runs a full match pass inline
        for every arrival — the whole batch is registered first and a *single*
        deferred match pass runs afterwards.  Queries answered as part of an
        earlier arrival's group have already left the pool when their turn
        comes, so the pass performs at most one match attempt per answered
        group plus one attempt per query that remains pending (the final retry
        sweep).  On coordination-heavy workloads this roughly halves the number
        of match passes.

        Batch semantics are per-item: a query that fails the static safety /
        uniqueness checks (or reuses an already-registered id) is recorded as
        ``REJECTED`` with its error message instead of raising, and the rest of
        the batch proceeds.  The returned list is parallel to ``queries``.
        """
        compiled = [self._coerce_query(query, owner) for query in queries]

        batch: list[CoordinationRequest] = []
        with self._lock:
            for query in compiled:
                request = CoordinationRequest(query=query)
                batch.append(request)
                rejection = self._run_static_checks(request)
                if rejection is not None:
                    self._requests.setdefault(query.query_id, request)
                    self.statistics.queries_rejected += 1
                    self.events.publish(
                        EventType.QUERY_REJECTED,
                        query_id=query.query_id,
                        owner=query.owner,
                        reason=str(rejection),
                    )
                    continue
                if query.query_id in self._pool or query.query_id in self._requests:
                    request.status = QueryStatus.REJECTED
                    request.error = f"a query with id {query.query_id!r} is already registered"
                    self.statistics.queries_rejected += 1
                    self.events.publish(
                        EventType.QUERY_REJECTED,
                        query_id=query.query_id,
                        owner=query.owner,
                        reason=request.error,
                    )
                    continue
                self._register_locked(request)

            if self._data_dirty:
                self._data_dirty = False
                self._retry_pending_locked()

            # The single deferred match pass, in arrival order.  Members of a
            # group answered by an earlier trigger are no longer in the pool
            # and are skipped without a match attempt.
            for request in batch:
                if request.status is QueryStatus.PENDING and request.query_id in self._pool:
                    self._attempt_match_locked(request.query)
        return batch

    @staticmethod
    def _coerce_query(
        query: Union[ir.EntangledQuery, ast.EntangledSelect, str],
        owner: Optional[str],
    ) -> ir.EntangledQuery:
        if not isinstance(query, ir.EntangledQuery):
            return compile_entangled(query, owner=owner)
        if owner is not None and query.owner is None:
            return query.replace_owner(owner)
        return query

    @staticmethod
    def _run_static_checks(request: CoordinationRequest) -> Optional[EntanglementError]:
        """Safety / uniqueness analysis; marks the request REJECTED on failure."""
        try:
            request.analysis = check(request.query)
            return None
        except EntanglementError as exc:
            request.status = QueryStatus.REJECTED
            request.error = str(exc)
            return exc

    def _add_pending(self, query: ir.EntangledQuery) -> None:
        """Insert a query into pending bookkeeping (lock held).

        The sharded coordinator overrides this (and :meth:`_remove_pending`)
        to route the query into the shard owning its relation signature.
        """
        self._pool[query.query_id] = query
        self._index.add_query(query)

    def _register_locked(self, request: CoordinationRequest) -> None:
        """Add a checked request to the pool and index (lock held, no matching)."""
        query = request.query
        for atom in list(query.heads) + list(query.answer_atoms):
            self.registry.ensure(atom.relation, atom.arity)
        self._add_pending(query)
        self._requests[query.query_id] = request
        self.statistics.queries_registered += 1
        self.events.publish(
            EventType.QUERY_REGISTERED,
            query_id=query.query_id,
            owner=query.owner,
            sql=query.sql or query.describe(),
        )
        self._record_pending_row(request)

    # -- matching ----------------------------------------------------------------------------------

    def _attempt_match_locked(self, trigger: ir.EntangledQuery) -> Optional[ExecutionOutcome]:
        """Try to coordinate ``trigger`` with the current pool (lock held)."""
        if trigger.query_id not in self._pool:
            return None
        group = self._matcher.find_group(trigger, self._pool, self._index)
        self._note_match_attempt(trigger, group, pool_size=len(self._pool))
        if group is None:
            return None
        return self._execute_group_locked(group)

    def _note_match_attempt(
        self, trigger: ir.EntangledQuery, group: Optional[MatchedGroup], pool_size: int
    ) -> None:
        """Record statistics and the MATCH_ATTEMPTED event for one attempt."""
        if group is not None:
            self.statistics.record_match_attempt(True, group.statistics)
        else:
            from repro.core.matching import MatchStatistics

            self.statistics.record_match_attempt(False, MatchStatistics())
        self.events.publish(
            EventType.MATCH_ATTEMPTED,
            query_id=trigger.query_id,
            succeeded=group is not None,
            pool_size=pool_size,
        )

    def _run_executor(self, group: MatchedGroup) -> Optional[ExecutionOutcome]:
        """Joint execution with failure bookkeeping; ``None`` on rollback."""
        self._executing.active = True
        try:
            outcome = self.executor.execute(group)
        except ExecutionError as exc:
            self.statistics.executions_failed += 1
            self.events.publish(
                EventType.EXECUTION_FAILED,
                query_ids=group.query_ids,
                reason=str(exc),
            )
            return None
        finally:
            self._executing.active = False
        return outcome

    def _remove_pending(self, query_id: str) -> None:
        """Drop an answered query from pending bookkeeping (lock held)."""
        query = self._pool.pop(query_id)
        self._index.remove_query(query)

    def _finalize_outcome_locked(self, outcome: ExecutionOutcome) -> ExecutionOutcome:
        """Mark every group member answered and notify observers (lock held)."""
        group = outcome.group
        self.statistics.groups_matched += 1
        group_ids = tuple(group.query_ids)
        self.events.publish(
            EventType.GROUP_MATCHED,
            query_ids=list(group_ids),
            relations=sorted(outcome.inserted),
        )
        answered_requests: list[CoordinationRequest] = []
        for answer in outcome.answers:
            request = self._requests[answer.query_id]
            # status flips last: it is the commit point for lock-free readers
            # (the remote server snapshots records without taking this lock),
            # so a record seen as ANSWERED always carries its answer.
            request.answer = answer
            request.group_query_ids = group_ids
            request.answered_at = time.time()
            request.status = QueryStatus.ANSWERED
            self.statistics.queries_answered += 1
            self._remove_pending(answer.query_id)
            self._update_pending_row(request)
            self.events.publish(
                EventType.QUERY_ANSWERED,
                query_id=answer.query_id,
                owner=request.owner,
                tuples={relation: list(values) for relation, values in answer.tuples.items()},
                group=list(group_ids),
            )
            answered_requests.append(request)
        self._answered.notify_all()
        # Callbacks fire only after every group member is marked answered and
        # removed from the pool, so an observer reading a partner's handle
        # (or waiting on it) sees the whole group in its final state.
        for request in answered_requests:
            self._fire_done_callbacks_locked(request)
        return outcome

    def _execute_group_locked(self, group: MatchedGroup) -> Optional[ExecutionOutcome]:
        outcome = self._run_executor(group)
        if outcome is None:
            return None
        return self._finalize_outcome_locked(outcome)

    def retry_pending(self) -> int:
        """Re-attempt coordination for every pending query.

        Useful after base data changed (new flights inserted) without any new
        entangled query arriving.  Returns the number of queries answered.
        """
        with self._lock:
            return self._retry_pending_locked()

    def _retry_pending_locked(self, exclude: Optional[str] = None) -> int:
        answered_before = self.statistics.queries_answered
        for query_id in list(self._pool.keys()):
            if query_id == exclude or query_id not in self._pool:
                continue
            self._attempt_match_locked(self._pool[query_id])
        return self.statistics.queries_answered - answered_before

    # -- waiting / cancellation -------------------------------------------------------------------------

    def wait(self, query_id: str, timeout: Optional[float] = None) -> ir.GroundAnswer:
        """Block until ``query_id`` is answered; raise on timeout or cancellation."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                request = self._requests.get(query_id)
                if request is None:
                    raise QueryNotPendingError(query_id)
                if request.status is QueryStatus.ANSWERED:
                    assert request.answer is not None
                    return request.answer
                if request.status in (QueryStatus.CANCELLED, QueryStatus.REJECTED):
                    raise EntanglementError(
                        f"query {query_id!r} is {request.status.value}: {request.error or ''}"
                    )
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.statistics.queries_timed_out += 1
                        self.events.publish(EventType.QUERY_TIMED_OUT, query_id=query_id)
                        raise CoordinationTimeoutError(query_id, timeout or 0.0)
                self._answered.wait(remaining)

    def wait_many(
        self, query_ids: Iterable[str], timeout: Optional[float] = None
    ) -> dict[str, ir.GroundAnswer]:
        """Block until every query in ``query_ids`` is answered.

        ``timeout`` bounds the *total* wait, not each query's.  Returns a
        ``query_id -> GroundAnswer`` mapping; raises like :meth:`wait` for the
        first query that times out, was cancelled or rejected.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        answers: dict[str, ir.GroundAnswer] = {}
        for query_id in query_ids:
            remaining = None if deadline is None else max(deadline - time.monotonic(), 0.0)
            answers[query_id] = self.wait(query_id, timeout=remaining)
        return answers

    # -- completion callbacks ---------------------------------------------------------------------------

    def add_done_callback(
        self, query_id: str, fn: Callable[[CoordinationRequest], None]
    ) -> None:
        """Invoke ``fn(request)`` once ``query_id`` reaches a terminal state.

        If the query is already answered, cancelled or rejected the callback
        fires immediately (in the calling thread); otherwise it fires in the
        thread whose submission answers the group, or in the cancelling
        thread.  Exceptions raised by callbacks are swallowed — a broken
        observer must not abort coordination for the rest of the group.
        """
        with self._lock:
            request = self._requests.get(query_id)
            if request is None:
                raise QueryNotPendingError(query_id)
            if request.status is QueryStatus.PENDING:
                self._done_callbacks.setdefault(query_id, []).append(fn)
                return
        self._invoke_done_callback(fn, request)

    def _fire_done_callbacks_locked(self, request: CoordinationRequest) -> None:
        for fn in self._done_callbacks.pop(request.query_id, ()):
            self._invoke_done_callback(fn, request)

    @staticmethod
    def _invoke_done_callback(
        fn: Callable[[CoordinationRequest], None], request: CoordinationRequest
    ) -> None:
        try:
            fn(request)
        except Exception:  # noqa: BLE001 - observer failures must not poison the pool
            pass

    def cancel(self, query_id: str) -> None:
        """Withdraw a pending query from the pool.

        Raises :class:`~repro.errors.QueryAlreadyAnsweredError` when the query
        was already matched — its group's effects are durable and the request
        record must not be mutated — and the plain
        :class:`~repro.errors.QueryNotPendingError` for unknown, cancelled or
        rejected queries.
        """
        with self._lock:
            request = self._requests.get(query_id)
            if request is None:
                raise QueryNotPendingError(query_id)
            if request.status is QueryStatus.ANSWERED:
                raise QueryAlreadyAnsweredError(query_id)
            if query_id not in self._pool:
                raise QueryNotPendingError(query_id)
            self._remove_pending(query_id)
            self._cancel_registered_locked(request)

    def _cancel_registered_locked(self, request: CoordinationRequest) -> None:
        """Shared cancellation bookkeeping once the query left its pool."""
        request.status = QueryStatus.CANCELLED
        self.statistics.queries_cancelled += 1
        self._update_pending_row(request)
        self.events.publish(
            EventType.QUERY_CANCELLED, query_id=request.query_id, owner=request.owner
        )
        self._fire_done_callbacks_locked(request)
        self._answered.notify_all()

    # -- inspection ------------------------------------------------------------------------------------------

    def request(self, query_id: str) -> CoordinationRequest:
        with self._lock:
            request = self._requests.get(query_id)
            if request is None:
                raise QueryNotPendingError(query_id)
            return request

    def status(self, query_id: str) -> QueryStatus:
        return self.request(query_id).status

    def pending_queries(self) -> list[ir.EntangledQuery]:
        with self._lock:
            return list(self._pool.values())

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pool)

    def requests(self) -> list[CoordinationRequest]:
        with self._lock:
            return list(self._requests.values())

    def answers(self, relation: str) -> list[tuple[Any, ...]]:
        """The current contents of an answer relation."""
        return self.registry.tuples(relation)

    def provider_index_size(self) -> int:
        with self._lock:
            return len(self._index)

    def shard_stats(self) -> list[dict[str, int]]:
        """Per-shard introspection; the inline coordinator is one big shard."""
        with self._lock:
            return [
                {
                    "shard": 0,
                    "pending": len(self._pool),
                    "index_size": len(self._index),
                    "queued_events": 0,
                    "dirty": int(self._data_dirty),
                    "cross_shard": 0,
                }
            ]

    # -- lifecycle (uniform surface with the sharded coordinator) ----------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until no match events are queued or in flight.

        The inline coordinator matches synchronously inside ``submit``, so
        there is never queued work; this exists so callers can treat both
        coordinator flavours uniformly.
        """
        del timeout
        return True

    def shutdown(self) -> None:
        """Stop background matching resources (no-op for the inline path)."""
