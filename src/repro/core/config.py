"""Typed configuration for assembling a Youtopia instance.

:class:`SystemConfig` replaces the kwargs-soup constructors of
:class:`~repro.core.system.YoutopiaSystem` and
:class:`~repro.core.coordinator.Coordinator`: one frozen dataclass carries
every tuning knob, can be passed around (benchmark sweeps, the service layer,
future network servers), compared, and overridden immutably.  The legacy
keyword arguments remain accepted by both constructors and are folded into a
``SystemConfig`` internally.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union


@dataclass(frozen=True)
class SystemConfig:
    """Every tuning knob of a Youtopia instance, in one value object.

    Attributes
    ----------
    seed:
        Seed for the nondeterministic ``CHOOSE`` tie-breaking; ``None`` means
        a fresh unseeded RNG.
    max_group_size:
        Upper bound on the size of a coordination group the matcher explores.
    use_exhaustive_baseline:
        Route matching through the exponential baseline evaluator instead of
        the unification-based matcher (benchmarking only).
    use_constant_index:
        Enable the (relation, constant-position) provider index.
    enable_index_lookup:
        Let the relational optimizer use storage indexes for plain SQL.
    auto_retry_on_data_change:
        Re-attempt pending coordinations when base data changes.
    persist_to:
        Path of a SQLite mirror database, or ``None`` for memory-only.
    match_workers:
        Number of background matching threads.  ``0`` (the default) keeps the
        classic inline behaviour: every ``submit`` runs a match pass under the
        coordinator's global lock before returning.  With one or more workers
        the system uses the sharded, event-driven coordinator
        (:class:`~repro.core.sharding.ShardedCoordinator`): submissions only
        register and enqueue a match event, and the worker pool drains
        per-shard queues in the background — callers observe answers through
        ``wait`` / handles / callbacks.
    shard_count:
        Number of pending-pool shards for the sharded coordinator.  ``None``
        derives one shard per worker (``max(1, match_workers)``) so each
        worker tends to own a shard; set it explicitly to decouple the two.
        Ignored when ``match_workers == 0``.
    idle_sweep_interval:
        Liveness backstop for the sharded coordinator (seconds).  A data
        change marks shards dirty, and a shard normally sweeps its pending
        set when its next match event is processed; a shard receiving no
        traffic would starve.  Idle workers therefore sweep any shard that
        has stayed dirty (with pending residents) for at least this long.
        ``0`` disables the backstop.  Ignored when ``match_workers == 0``.
    data_dir:
        Directory for the durability subsystem
        (:mod:`~repro.core.durability`): a write-ahead log journaling every
        coordination state transition plus periodic snapshots.  A system
        rebuilt over the same directory after a crash recovers its pending
        pool, request history and base data.  ``None`` (the default) keeps
        the system memory-only.
    fsync_policy:
        When WAL appends are forced to disk: ``"always"`` (every record),
        ``"batch"`` (the default: once per append, or once per
        ``submit_many`` group-commit batch) or ``"never"`` (OS-buffered).
        Ignored without ``data_dir``.
    snapshot_interval:
        Number of WAL records between automatic snapshots (after which the
        log is truncated).  ``0`` disables automatic snapshots — the log
        then only shrinks on explicit ``checkpoint()`` calls.  Ignored
        without ``data_dir``.
    match_policy:
        How the coordinator chooses among candidate match groups: one of
        ``first_match`` (the default — commit the first group the search
        discovers, exactly the classic behaviour and cost), ``priority``
        (maximise summed per-query priorities), ``fairness`` (serve the
        longest-waiting member) or ``min_cost`` (minimise the summed
        ``policy_cost_attribute`` over chosen valuations).  See
        :mod:`repro.core.policy`.
    policy_candidate_limit:
        Upper bound on how many candidate groups a non-``first_match``
        policy enumerates per match attempt.  Bounds the extra search work;
        ``first_match`` never enumerates more than one group regardless.
    policy_cost_attribute:
        Variable name (case-insensitive) the ``min_cost`` policy sums over
        each group's chosen valuations.
    match_plan:
        How the structural matching phase executes: ``"compiled"`` (the
        default) precompiles each query into a slot-indexed match plan
        (:mod:`repro.core.matchplan`) — interned constants, positional slot
        arrays and memoized per-pair unification programs — while
        ``"interpreted"`` keeps the original per-attempt term interpretation.
        Both modes find identical groups; the interpreted path exists for
        differential testing and as the semantic reference.
    provider_index:
        Which provider index backs candidate pruning: ``"grid"`` (the
        default) uses the grid-file-style multi-attribute index that
        intersects per-column ordered buckets over *every* bound column;
        ``"single_key"`` keeps the classic index that refines on one
        (relation, constant-position) bucket chain and rescans the relation
        bucket to restore arrival order.  Candidate order is identical in
        both.  ``use_constant_index=False`` degrades either index to the
        naive (relation, arity) scan.
    pending_memory_limit:
        System-wide bound on *fully-materialized* pending queries.  ``None``
        (the default) keeps the classic all-in-memory pool.  With a limit,
        every pending pool becomes a :class:`~repro.core.tiering.TieredPool`:
        the budget is split evenly across shards, recently-touched queries
        stay hot in shard memory, and colder ones are evicted to the
        ``cold_store`` backend — their provider-index entries stay resident,
        so a candidate hit transparently pages the query back in before the
        match attempt.  Answers are identical to the untiered pool; only
        memory (bounded) and page-in latency (on cold hits) change.
    cold_store:
        Which :mod:`repro.storage.backends` scheme holds evicted queries:
        ``"sqlite"`` (the default — ``cold_store.db`` inside ``data_dir``,
        or an in-memory SQLite database without one) or ``"memory"``; custom
        backends register via
        :func:`repro.storage.backends.register_backend`.  Ignored without
        ``pending_memory_limit``.
    eviction_policy:
        Which hot query spills when a pool exceeds its budget: ``"lru"``
        (the default — touches on every probe, so actively-matching queries
        stay hot) or ``"fifo"`` (strict arrival order, no touch accounting).
        Ignored without ``pending_memory_limit``.
    """

    seed: Optional[int] = None
    max_group_size: int = 32
    use_exhaustive_baseline: bool = False
    use_constant_index: bool = True
    enable_index_lookup: bool = True
    auto_retry_on_data_change: bool = False
    persist_to: Optional[Union[str, Path]] = None
    match_workers: int = 0
    shard_count: Optional[int] = None
    idle_sweep_interval: float = 0.25
    data_dir: Optional[Union[str, Path]] = None
    fsync_policy: str = "batch"
    snapshot_interval: int = 1000
    match_policy: str = "first_match"
    policy_candidate_limit: int = 16
    policy_cost_attribute: str = "price"
    match_plan: str = "compiled"
    provider_index: str = "grid"
    pending_memory_limit: Optional[int] = None
    cold_store: str = "sqlite"
    eviction_policy: str = "lru"

    @property
    def resolved_shard_count(self) -> int:
        """The effective number of shards (defaults to one per worker)."""
        if self.shard_count is not None:
            return max(1, self.shard_count)
        return max(1, self.match_workers)

    def replace(self, **overrides: object) -> "SystemConfig":
        """A copy of this configuration with some fields overridden."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]

    def as_dict(self) -> dict[str, object]:
        """A plain-dict view (handy for logging and admin introspection)."""
        return {
            "seed": self.seed,
            "max_group_size": self.max_group_size,
            "use_exhaustive_baseline": self.use_exhaustive_baseline,
            "use_constant_index": self.use_constant_index,
            "enable_index_lookup": self.enable_index_lookup,
            "auto_retry_on_data_change": self.auto_retry_on_data_change,
            "persist_to": None if self.persist_to is None else str(self.persist_to),
            "match_workers": self.match_workers,
            "shard_count": self.resolved_shard_count,
            "idle_sweep_interval": self.idle_sweep_interval,
            "data_dir": None if self.data_dir is None else str(self.data_dir),
            "fsync_policy": self.fsync_policy,
            "snapshot_interval": self.snapshot_interval,
            "match_policy": self.match_policy,
            "policy_candidate_limit": self.policy_candidate_limit,
            "policy_cost_attribute": self.policy_cost_attribute,
            "match_plan": self.match_plan,
            "provider_index": self.provider_index,
            "pending_memory_limit": self.pending_memory_limit,
            "cold_store": self.cold_store,
            "eviction_policy": self.eviction_policy,
        }
