"""Per-user sessions.

The demo's travel web site is a three-tier application: the browser talks to
the middle tier, which submits queries to Youtopia on behalf of a logged-in
user.  :class:`YoutopiaSession` is that per-user unit of interaction — it tags
submitted entangled queries with the user's name (the *owner*), remembers
which requests the user has outstanding, and offers convenience accessors for
"my pending requests" / "my answers" that the account view of the demo shows.

Sessions go through the transport-agnostic service layer
(:mod:`repro.service`): submissions return future-style
:class:`~repro.service.handles.RequestHandle` objects, and a whole batch can
be submitted in one coordination pass via :meth:`YoutopiaSession.submit_many`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional, Union

from repro.core import ir
from repro.core.compiler import EntangledQueryBuilder
from repro.core.coordinator import CoordinationRequest, QueryStatus
from repro.relalg.engine import QueryResult
from repro.sqlparser import ast

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import YoutopiaSystem
    from repro.service.handles import RequestHandle
    from repro.service.inprocess import InProcessService


class YoutopiaSession:
    """A user-scoped view on a :class:`~repro.core.system.YoutopiaSystem`."""

    def __init__(
        self,
        system: "YoutopiaSystem",
        user: str,
        service: Optional["InProcessService"] = None,
    ) -> None:
        self.system = system
        self.service = service or system.service()
        self.user = user
        self._submitted: list[str] = []

    # -- plain SQL -------------------------------------------------------------------------

    def query(self, sql: str) -> QueryResult:
        """Run a plain SELECT (reads are not user-scoped)."""
        return self.system.query(sql)

    def execute(self, sql: str) -> Union[QueryResult, "RequestHandle"]:
        """Execute any statement on behalf of this user.

        Plain SQL returns a :class:`~repro.relalg.engine.QueryResult`;
        entangled queries return a future-style handle.
        """
        result = self.system.execute(sql, owner=self.user)
        if isinstance(result, CoordinationRequest):
            self._submitted.append(result.query_id)
            return self.service.request(result.query_id)
        return result

    # -- entangled queries -------------------------------------------------------------------

    def submit(
        self, query: Union[str, ast.EntangledSelect, ir.EntangledQuery]
    ) -> "RequestHandle":
        """Submit an entangled query owned by this user."""
        handle = self.service.submit(query, owner=self.user)
        self._submitted.append(handle.query_id)
        return handle

    def submit_many(
        self, queries: Iterable[Union[str, ast.EntangledSelect, ir.EntangledQuery]]
    ) -> list["RequestHandle"]:
        """Submit a batch owned by this user in a single coordination pass."""
        handles = self.service.submit_many(list(queries), owner=self.user)
        self._submitted.extend(handle.query_id for handle in handles)
        return handles

    def builder(self) -> EntangledQueryBuilder:
        """A query builder pre-bound to this user as owner."""
        return EntangledQueryBuilder(owner=self.user)

    def wait(self, query_id: str, timeout: Optional[float] = None) -> ir.GroundAnswer:
        return self.system.wait(query_id, timeout=timeout)

    def cancel(self, query_id: str) -> None:
        self.system.cancel(query_id)

    # -- the "account view" ----------------------------------------------------------------------

    def my_requests(self) -> list["RequestHandle"]:
        """A handle for every coordination request this session has submitted."""
        return [self.service.request(query_id) for query_id in self._submitted]

    def my_pending(self) -> list["RequestHandle"]:
        return [r for r in self.my_requests() if r.status is QueryStatus.PENDING]

    def my_answers(self) -> list[ir.GroundAnswer]:
        return [
            r.answer
            for r in self.my_requests()
            if r.status is QueryStatus.ANSWERED and r.answer is not None
        ]

    def my_answer_tuples(self, relation: str) -> list[tuple[Any, ...]]:
        """This user's tuples in a given answer relation."""
        tuples: list[tuple[Any, ...]] = []
        for answer in self.my_answers():
            for relation_name, values in answer.all_tuples():
                if relation_name.lower() == relation.lower():
                    tuples.append(values)
        return tuples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"YoutopiaSession(user={self.user!r}, submitted={len(self._submitted)})"
