"""Per-user sessions.

The demo's travel web site is a three-tier application: the browser talks to
the middle tier, which submits queries to Youtopia on behalf of a logged-in
user.  :class:`YoutopiaSession` is that per-user unit of interaction — it tags
submitted entangled queries with the user's name (the *owner*), remembers
which requests the user has outstanding, and offers convenience accessors for
"my pending requests" / "my answers" that the account view of the demo shows.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.core import ir
from repro.core.compiler import EntangledQueryBuilder
from repro.core.coordinator import CoordinationRequest, QueryStatus
from repro.relalg.engine import QueryResult
from repro.sqlparser import ast


class YoutopiaSession:
    """A user-scoped view on a :class:`~repro.core.system.YoutopiaSystem`."""

    def __init__(self, system: "YoutopiaSystem", user: str) -> None:  # noqa: F821
        self.system = system
        self.user = user
        self._submitted: list[str] = []

    # -- plain SQL -------------------------------------------------------------------------

    def query(self, sql: str) -> QueryResult:
        """Run a plain SELECT (reads are not user-scoped)."""
        return self.system.query(sql)

    def execute(self, sql: str) -> Union[QueryResult, CoordinationRequest]:
        """Execute any statement on behalf of this user."""
        result = self.system.execute(sql, owner=self.user)
        if isinstance(result, CoordinationRequest):
            self._submitted.append(result.query_id)
        return result

    # -- entangled queries -------------------------------------------------------------------

    def submit(
        self, query: Union[str, ast.EntangledSelect, ir.EntangledQuery]
    ) -> CoordinationRequest:
        """Submit an entangled query owned by this user."""
        request = self.system.submit_entangled(query, owner=self.user)
        self._submitted.append(request.query_id)
        return request

    def builder(self) -> EntangledQueryBuilder:
        """A query builder pre-bound to this user as owner."""
        return EntangledQueryBuilder(owner=self.user)

    def wait(self, query_id: str, timeout: Optional[float] = None) -> ir.GroundAnswer:
        return self.system.wait(query_id, timeout=timeout)

    def cancel(self, query_id: str) -> None:
        self.system.cancel(query_id)

    # -- the "account view" ----------------------------------------------------------------------

    def my_requests(self) -> list[CoordinationRequest]:
        """Every coordination request this session has submitted."""
        return [self.system.coordinator.request(query_id) for query_id in self._submitted]

    def my_pending(self) -> list[CoordinationRequest]:
        return [r for r in self.my_requests() if r.status is QueryStatus.PENDING]

    def my_answers(self) -> list[ir.GroundAnswer]:
        return [
            r.answer
            for r in self.my_requests()
            if r.status is QueryStatus.ANSWERED and r.answer is not None
        ]

    def my_answer_tuples(self, relation: str) -> list[tuple[Any, ...]]:
        """This user's tuples in a given answer relation."""
        tuples: list[tuple[Any, ...]] = []
        for answer in self.my_answers():
            for relation_name, values in answer.all_tuples():
                if relation_name.lower() == relation.lower():
                    tuples.append(values)
        return tuples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"YoutopiaSession(user={self.user!r}, submitted={len(self._submitted)})"
