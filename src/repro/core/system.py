"""The Youtopia system facade.

This assembles the architecture of Figure 2 of the demo paper into one object:

* the **database** (storage catalog) with its regular tables,
* the **execution engine** (relational query engine) for plain SQL,
* the **query compiler** for entangled SQL,
* the **coordination component** (pending pool + matcher + joint executor),
* answer relations, transactions, events and statistics.

Applications — the travel web site's middle tier, the SQL command line and the
admin interface — talk to this facade (usually through a per-user
:class:`~repro.core.session.YoutopiaSession`).
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.core import ir
from repro.core.answer import AnswerRelationRegistry
from repro.core.compiler import compile_entangled
from repro.core.config import SystemConfig
from repro.core.coordinator import CoordinationRequest, Coordinator, QueryStatus
from repro.core.durability import DurabilityManager, RecoveryReport
from repro.core.events import EventBus, EventType
from repro.core.executor import JointExecutor, SideEffectHook
from repro.core.transactions import TransactionManager
from repro.errors import PlanError, ScriptError, YoutopiaError
from repro.relalg.engine import QueryEngine, QueryResult
from repro.sqlparser import ast, parse_script, parse_statement
from repro.sqlparser.pretty import format_statement
from repro.storage.database import Database
from repro.storage.sqlite_backend import SQLiteMirror


class YoutopiaSystem:
    """A complete in-process Youtopia instance.

    Prefer constructing it from a :class:`~repro.core.config.SystemConfig`
    (``YoutopiaSystem(config=SystemConfig(seed=0))``); the individual keyword
    arguments are retained for backwards compatibility and are folded into a
    config internally.  Application code should usually talk to the instance
    through the transport-agnostic service layer — see :meth:`service` and
    :mod:`repro.service`.
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        seed: Optional[int] = None,
        max_group_size: int = 32,
        use_exhaustive_baseline: bool = False,
        use_constant_index: bool = True,
        enable_index_lookup: bool = True,
        auto_retry_on_data_change: bool = False,
        persist_to: Optional[Union[str, Path]] = None,
        config: Optional[SystemConfig] = None,
    ) -> None:
        if config is None:
            config = SystemConfig(
                seed=seed,
                max_group_size=max_group_size,
                use_exhaustive_baseline=use_exhaustive_baseline,
                use_constant_index=use_constant_index,
                enable_index_lookup=enable_index_lookup,
                auto_retry_on_data_change=auto_retry_on_data_change,
                persist_to=persist_to,
            )
        self.config = config
        self.database = database or Database()
        self.engine = QueryEngine(self.database, enable_index_lookup=config.enable_index_lookup)
        self.transactions = TransactionManager(self.database)
        self.answer_relations = AnswerRelationRegistry(self.database)
        self.events = EventBus()
        self.rng = random.Random(config.seed)
        self.executor = JointExecutor(self.engine, self.answer_relations, self.transactions)
        if config.match_workers > 0:
            from repro.core.sharding import ShardedCoordinator

            coordinator_cls: type[Coordinator] = ShardedCoordinator
        else:
            coordinator_cls = Coordinator
        self.coordinator = coordinator_cls(
            database=self.database,
            engine=self.engine,
            registry=self.answer_relations,
            executor=self.executor,
            event_bus=self.events,
            rng=self.rng,
            config=config,
        )
        #: Durability subsystem (write-ahead log + snapshots).  Recovery runs
        #: *before* the journal is attached so replayed transitions are not
        #: re-journaled, and before the SQLite mirror attaches so the mirror's
        #: initial sync sees the recovered tables.
        self.durability: Optional[DurabilityManager] = None
        self.recovery: Optional[RecoveryReport] = None
        if config.data_dir is not None:
            self.durability = DurabilityManager(
                config.data_dir,
                fsync_policy=config.fsync_policy,
                snapshot_interval=config.snapshot_interval,
            )
            self.recovery = self.durability.recover(self)
            self.coordinator.journal = self.durability
            if self.recovery.has_state:
                # Re-arm matching for recovered pending queries: a crash that
                # fell between a match and its commit record left the group
                # pending, and the dirty sweep re-attempts it.
                self.coordinator.mark_all_dirty()
                self.events.publish(
                    EventType.RECOVERY_COMPLETED, **self.recovery.as_dict()
                )
                # A post-recovery checkpoint makes the next restart replay
                # from a fresh snapshot instead of the whole log again.
                self.coordinator.checkpoint()
        self._mirror: Optional[SQLiteMirror] = None
        if config.persist_to is not None:
            # The WAL's fsync policy extends to the mirror only when the
            # durability subsystem is actually on; a mirror-only system keeps
            # SQLite's fully-synchronous default (the pre-durability
            # behaviour, and what config.py documents).
            mirror_policy = config.fsync_policy if config.data_dir is not None else "always"
            self._mirror = SQLiteMirror(
                self.database, config.persist_to, fsync_policy=mirror_policy
            )
            self._mirror.attach()

    # -- lifecycle -------------------------------------------------------------------------

    def close(self) -> None:
        if self.durability is not None:
            # A clean-shutdown checkpoint: restart replays nothing.  A
            # failure here (disk full) must not abort the close — the WAL
            # already holds everything the snapshot would have captured.
            try:
                self.coordinator.checkpoint()
            except Exception as exc:  # noqa: BLE001 - close must complete
                self.durability.note_checkpoint_failure(exc)
        self.coordinator.shutdown()
        if self.durability is not None:
            self.durability.close()
        if self._mirror is not None:
            self._mirror.close()
            self._mirror = None

    @property
    def recovered(self) -> bool:
        """Whether this instance was rebuilt from prior durable state."""
        return self.recovery is not None and self.recovery.has_state

    def checkpoint(self) -> bool:
        """Snapshot the recoverable state and truncate the WAL (if durable)."""
        return self.coordinator.checkpoint()

    def durability_stats(self) -> dict[str, Any]:
        """A JSON-safe durability summary (``{"enabled": False}`` when off)."""
        if self.durability is None:
            return {"enabled": False}
        return self.durability.stats()

    def __enter__(self) -> "YoutopiaSystem":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- statement routing -------------------------------------------------------------------

    def execute(
        self, sql: Union[str, ast.Statement], owner: Optional[str] = None
    ) -> Union[QueryResult, CoordinationRequest]:
        """Execute one statement, routing it to the right component.

        Plain SQL (DDL, DML, SELECT) goes to the execution engine and returns a
        :class:`~repro.relalg.engine.QueryResult`.  Entangled queries go to the
        coordination component and return a
        :class:`~repro.core.coordinator.CoordinationRequest`.
        """
        statement = parse_statement(sql) if isinstance(sql, str) else sql
        if isinstance(statement, ast.EntangledSelect):
            return self.coordinator.submit(statement, owner=owner)
        if self.durability is not None and not isinstance(statement, ast.Select):
            # DDL/DML is journaled (apply, then record, atomically vs.
            # checkpoints) so base-data changes replay in order on recovery;
            # failing statements are never journaled.
            result = self.durability.journaled_data(
                format_statement(statement), lambda: self.engine.execute(statement)
            )
            self.coordinator._maybe_checkpoint()
            return result
        return self.engine.execute(statement)

    def execute_script(
        self, sql: str, owner: Optional[str] = None
    ) -> list[Union[QueryResult, CoordinationRequest]]:
        """Execute a ``;``-separated script through :meth:`execute`.

        A failure mid-script is re-raised as :class:`~repro.errors.ScriptError`
        carrying the failing statement's index and SQL text (the original
        error stays available as ``__cause__``).
        """
        results: list[Union[QueryResult, CoordinationRequest]] = []
        for index, statement in enumerate(parse_script(sql)):
            try:
                results.append(self.execute(statement, owner=owner))
            except YoutopiaError as exc:
                raise ScriptError(index, format_statement(statement), exc) from exc
        return results

    def query(self, sql: str) -> QueryResult:
        """Run a plain SELECT and return its result."""
        result = self.execute(sql)
        if not isinstance(result, QueryResult):
            raise PlanError("expected a plain SELECT, got an entangled query")
        return result

    # -- entangled queries ---------------------------------------------------------------------

    def submit_entangled(
        self,
        query: Union[str, ast.EntangledSelect, ir.EntangledQuery],
        owner: Optional[str] = None,
    ) -> CoordinationRequest:
        """Submit an entangled query (SQL text, AST or compiled IR)."""
        return self.coordinator.submit(query, owner=owner)

    def compile(self, sql: str, owner: Optional[str] = None) -> ir.EntangledQuery:
        """Compile entangled SQL to the IR without registering it."""
        return compile_entangled(sql, owner=owner)

    def submit_many(
        self,
        queries: Sequence[Union[str, ast.EntangledSelect, ir.EntangledQuery]],
        owner: Optional[str] = None,
    ) -> list[CoordinationRequest]:
        """Submit a batch of entangled queries in one coordination pass.

        See :meth:`~repro.core.coordinator.Coordinator.submit_many` for the
        batch semantics (single lock acquisition, one deferred match pass).
        """
        return self.coordinator.submit_many(queries, owner=owner)

    def wait(self, query_id: str, timeout: Optional[float] = None) -> ir.GroundAnswer:
        return self.coordinator.wait(query_id, timeout=timeout)

    def wait_many(
        self, query_ids: Sequence[str], timeout: Optional[float] = None
    ) -> dict[str, ir.GroundAnswer]:
        return self.coordinator.wait_many(query_ids, timeout=timeout)

    def cancel(self, query_id: str) -> None:
        self.coordinator.cancel(query_id)

    def status(self, query_id: str) -> QueryStatus:
        return self.coordinator.status(query_id)

    def retry_pending(self) -> int:
        return self.coordinator.retry_pending()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until background match workers processed every queued event.

        Always ``True`` immediately on the inline (``match_workers == 0``)
        path, where matching happens synchronously inside ``submit``.
        """
        return self.coordinator.drain(timeout)

    # -- answer relations -------------------------------------------------------------------------

    def declare_answer_relation(
        self,
        name: str,
        columns: Optional[Sequence[str]] = None,
        types: Optional[Sequence[str]] = None,
        arity: Optional[int] = None,
    ) -> None:
        def apply() -> None:
            self.answer_relations.declare(name, columns=columns, types=types, arity=arity)
            # Compiled match plans may embed assumptions about the relation's
            # metadata; a (re)declaration drops them all (rebuilt lazily).
            self.coordinator.invalidate_match_plans()

        if self.durability is not None:
            self.durability.journaled_declare(name, columns, types, arity, apply)
        else:
            apply()

    def answers(self, relation: str) -> list[tuple[Any, ...]]:
        return self.answer_relations.tuples(relation)

    def register_side_effect(self, hook: SideEffectHook, relation: str | None = None) -> None:
        """Register a side-effect hook run during joint execution."""
        self.executor.register_hook(hook, relation)

    # -- sessions and the service layer ----------------------------------------------------------------

    def session(self, user: str) -> "YoutopiaSession":
        """Open a per-user session (the unit the demo's web tier works with)."""
        from repro.core.session import YoutopiaSession

        return YoutopiaSession(self, user)

    def service(self) -> "InProcessService":  # noqa: F821
        """The transport-agnostic service view of this instance.

        Returns an :class:`~repro.service.InProcessService` bound to this
        system.  New application code should prefer talking through it (and
        the :class:`~repro.service.CoordinationService` protocol) rather than
        reaching into the facade or the coordinator directly.
        """
        from repro.service.inprocess import InProcessService

        return InProcessService(system=self)

    def handle(self, query_id: str) -> "RequestHandle":  # noqa: F821
        """A future-style handle for an already-registered entangled query."""
        from repro.service.handles import RequestHandle

        return RequestHandle(self.coordinator, self.coordinator.request(query_id))

    # -- introspection (used by the admin interface) ---------------------------------------------------

    def pending_queries(self) -> list[ir.EntangledQuery]:
        return self.coordinator.pending_queries()

    def shard_stats(self) -> list[dict[str, int]]:
        """Per-shard pending/index/queue sizes (one pseudo-shard when inline)."""
        return self.coordinator.shard_stats()

    def statistics(self) -> dict[str, int]:
        merged = dict(self.coordinator.statistics.as_dict())
        merged["transactions_committed"] = self.transactions.commits
        merged["transactions_rolled_back"] = self.transactions.rollbacks
        return merged

    def subscribe(self, subscriber, event_type: Optional[EventType] = None) -> None:
        self.events.subscribe(subscriber, event_type)
