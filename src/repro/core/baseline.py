"""Exhaustive baseline evaluator for entangled queries.

This module implements the *declarative semantics* of entangled queries
directly, with no cleverness: enumerate candidate subsets of the pending pool
(containing the trigger), enumerate a valuation for every query in the subset,
build the would-be answer relation from the instantiated heads, and check every
constraint of every query against it.

It is exponential in both the subset size and the number of candidate
valuations and exists for two reasons:

* it is the **correctness oracle** for the optimized matcher — the property
  tests assert that on small random pools the two agree on matchability; and
* it is the **baseline** of experiment E11, showing why the unification-based
  matcher of the companion paper is needed at all.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Mapping, Optional

from repro.core import ir
from repro.core.matching import MatchStatistics, MatchedGroup, Provider
from repro.relalg.engine import QueryEngine
from repro.relalg.rows import RowEnv
from repro.sqlparser.pretty import format_statement


class ExhaustiveEvaluator:
    """Direct implementation of the joint-answering semantics."""

    def __init__(
        self,
        engine: QueryEngine,
        rng: Optional[random.Random] = None,
        max_group_size: int = 4,
        max_valuations_per_query: int = 200,
    ) -> None:
        self.engine = engine
        self.rng = rng or random.Random()
        self.max_group_size = max_group_size
        self.max_valuations_per_query = max_valuations_per_query

    # -- public API --------------------------------------------------------------------

    def find_group(
        self,
        trigger: ir.EntangledQuery,
        pool: Mapping[str, ir.EntangledQuery],
        index: object = None,  # accepted for interface parity with Matcher
    ) -> Optional[MatchedGroup]:
        """Search for an answerable subset containing ``trigger``."""
        del index
        statistics = MatchStatistics()
        domain_cache: dict[str, list[tuple[Any, ...]]] = {}
        others = [query for query in pool.values() if query.query_id != trigger.query_id]

        for size in range(0, min(self.max_group_size, len(others) + 1)):
            for combination in itertools.combinations(others, size):
                group = [trigger, *combination]
                statistics.structural_nodes += 1
                result = self._try_group(group, statistics, domain_cache)
                if result is not None:
                    result.statistics = statistics
                    return result
        return None

    # -- internals ------------------------------------------------------------------------

    def _try_group(
        self,
        group: list[ir.EntangledQuery],
        statistics: MatchStatistics,
        domain_cache: dict[str, list[tuple[Any, ...]]],
    ) -> Optional[MatchedGroup]:
        per_query_valuations: list[list[dict[str, Any]]] = []
        for query in group:
            valuations = self._valuations(query, statistics, domain_cache)
            if not valuations:
                return None
            if len(valuations) > self.max_valuations_per_query:
                valuations = valuations[: self.max_valuations_per_query]
            per_query_valuations.append(valuations)

        for chosen in itertools.product(*per_query_valuations):
            statistics.grounding_attempts += 1
            answer_relation: dict[str, set[tuple[Any, ...]]] = {}
            for query, valuation in zip(group, chosen):
                for atom in query.heads:
                    answer_relation.setdefault(atom.relation.lower(), set()).add(
                        atom.substitute(valuation)
                    )
            satisfied = True
            for query, valuation in zip(group, chosen):
                for atom in query.answer_atoms:
                    contents = answer_relation.get(atom.relation.lower(), set())
                    if atom.substitute(valuation) not in contents:
                        satisfied = False
                        break
                if not satisfied:
                    break
            if satisfied:
                bindings = {
                    query.query_id: [dict(valuation)]
                    for query, valuation in zip(group, chosen)
                }
                return MatchedGroup(
                    queries=list(group),
                    bindings=bindings,
                    providers={},
                    statistics=statistics,
                )
        return None

    def _valuations(
        self,
        query: ir.EntangledQuery,
        statistics: MatchStatistics,
        domain_cache: dict[str, list[tuple[Any, ...]]],
    ) -> list[dict[str, Any]]:
        valuations: list[dict[str, Any]] = [{}]
        for domain in query.domains:
            key = format_statement(domain.subquery)
            if key not in domain_cache:
                statistics.domain_queries += 1
                domain_cache[key] = self.engine.execute(domain.subquery).rows
            rows = domain_cache[key]
            extended: list[dict[str, Any]] = []
            for partial in valuations:
                for row in rows:
                    candidate = dict(partial)
                    compatible = True
                    for name, value in zip(domain.variables, row):
                        if name in candidate and candidate[name] != value:
                            compatible = False
                            break
                        candidate[name] = value
                    if compatible:
                        extended.append(candidate)
            valuations = extended
            if not valuations:
                return []

        if query.predicates:
            evaluator = self.engine.evaluator
            valuations = [
                valuation
                for valuation in valuations
                if all(
                    evaluator.evaluate_predicate(
                        predicate.expression,
                        RowEnv({name: value for name, value in valuation.items()}),
                    )
                    for predicate in query.predicates
                )
            ]
        return valuations
