"""Answer relations: the shared tables through which entangled queries coordinate.

"The idea is that the answer to the query is returned through an answer
relation that is shared among multiple queries in the system" (demo paper,
Section 1).  In this reproduction answer relations are ordinary tables in the
catalog, so applications can read coordinated answers with plain SQL and the
SQLite mirror persists them like any other table.

The :class:`AnswerRelationRegistry` tracks which tables are answer relations,
lets applications declare meaningful column names/types up front (the travel
application declares ``Reservation(traveler TEXT, fno INTEGER)``), and
auto-declares relations with generic dynamically-typed columns the first time
an entangled query mentions them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.errors import EntanglementError
from repro.storage.database import Database
from repro.storage.schema import Column, ColumnType, TableSchema


@dataclass(frozen=True)
class AnswerRelationSpec:
    """Metadata about one declared answer relation."""

    name: str
    column_names: tuple[str, ...]

    @property
    def arity(self) -> int:
        return len(self.column_names)


class AnswerRelationRegistry:
    """Declares and tracks answer relations inside a :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self._specs: dict[str, AnswerRelationSpec] = {}

    # -- declaration -------------------------------------------------------------

    def declare(
        self,
        name: str,
        columns: Sequence[str] | None = None,
        types: Sequence[str] | None = None,
        arity: Optional[int] = None,
    ) -> AnswerRelationSpec:
        """Declare an answer relation.

        Exactly one of ``columns`` (with optional ``types``) or ``arity`` must
        describe the relation's width.  Declaring an already-declared relation
        with a consistent shape is a no-op; an inconsistent re-declaration
        raises :class:`~repro.errors.EntanglementError`.
        """
        key = name.lower()
        if columns is None:
            if arity is None:
                raise EntanglementError(
                    f"answer relation {name!r} needs either column names or an arity"
                )
            columns = tuple(f"a{position + 1}" for position in range(arity))
        columns = tuple(columns)
        if types is not None and len(types) != len(columns):
            raise EntanglementError(
                f"answer relation {name!r}: {len(types)} types for {len(columns)} columns"
            )

        existing = self._specs.get(key)
        if existing is not None:
            if existing.arity != len(columns):
                raise EntanglementError(
                    f"answer relation {name!r} already declared with arity "
                    f"{existing.arity}, cannot redeclare with arity {len(columns)}"
                )
            return existing

        if self._database.has_table(name):
            schema = self._database.schema(name)
            if schema.arity != len(columns):
                raise EntanglementError(
                    f"table {name!r} already exists with {schema.arity} columns; "
                    f"cannot use it as an answer relation of arity {len(columns)}"
                )
            spec = AnswerRelationSpec(schema.name, schema.column_names)
            self._specs[key] = spec
            return spec

        column_objects = []
        for position, column_name in enumerate(columns):
            type_name = types[position] if types is not None else "ANY"
            column_objects.append(Column(column_name, ColumnType.from_name(type_name)))
        schema = TableSchema(name, tuple(column_objects))
        self._database.create_table(schema)
        spec = AnswerRelationSpec(name, tuple(columns))
        self._specs[key] = spec
        return spec

    def ensure(self, name: str, arity: int) -> AnswerRelationSpec:
        """Declare ``name`` with generic columns unless it already exists."""
        key = name.lower()
        spec = self._specs.get(key)
        if spec is not None:
            if spec.arity != arity:
                raise EntanglementError(
                    f"answer relation {name!r} has arity {spec.arity}, "
                    f"but a query uses it with arity {arity}"
                )
            return spec
        return self.declare(name, arity=arity)

    # -- lookups -----------------------------------------------------------------

    def is_declared(self, name: str) -> bool:
        return name.lower() in self._specs

    def spec(self, name: str) -> AnswerRelationSpec:
        try:
            return self._specs[name.lower()]
        except KeyError:
            raise EntanglementError(f"unknown answer relation {name!r}") from None

    def names(self) -> list[str]:
        return sorted(spec.name for spec in self._specs.values())

    # -- contents -----------------------------------------------------------------

    def insert(self, name: str, values: Sequence[Any]) -> None:
        spec = self.spec(name)
        if len(values) != spec.arity:
            raise EntanglementError(
                f"answer relation {name!r} has arity {spec.arity}, "
                f"got a tuple of width {len(values)}"
            )
        self._database.insert(spec.name, list(values))

    def tuples(self, name: str) -> list[tuple[Any, ...]]:
        """All tuples currently in the answer relation."""
        spec = self.spec(name)
        return [tuple(row) for row in self._database.table(spec.name).rows()]

    def contains(self, name: str, values: Sequence[Any]) -> bool:
        spec = self.spec(name)
        return self._database.table(spec.name).contains_row(list(values))

    def clear(self, name: str) -> None:
        spec = self.spec(name)
        self._database.truncate(spec.name)
