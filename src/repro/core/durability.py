"""Durable coordination: write-ahead log, snapshots and crash recovery.

The coordination component's promise — "a query is not rejected but waits for
an opportunity to retry" — is only meaningful in production if that wait
survives a process crash.  This module makes the pending pool durable:

* a :class:`WriteAheadLog` journals every coordination state transition as an
  append-only stream of length-prefixed JSON records (the exact framing of
  :mod:`repro.service.remote.codec`, so the on-disk format and the wire
  format share one codec): ``submit``, ``commit`` (a matched group's
  answers), ``cancel``, ``data`` (plain DDL/DML executed through the system)
  and ``declare`` (answer-relation declarations);
* a **snapshot** periodically captures the full recoverable state — table
  contents, answer-relation declarations, every coordination request and the
  statistics counters — after which the log is truncated (checkpointing);
* :class:`DurabilityManager` ties the two together and drives **recovery**:
  load the snapshot, repair a torn log tail (a crash mid-write leaves a
  partial record, which is detected and truncated away), then replay the log
  tail LSN-by-LSN.  Replay is idempotent: records at or below the already-
  applied LSN are skipped, so replaying the same log twice equals replaying
  it once.

Write-ahead discipline and lock ordering
----------------------------------------
Coordinator records (``submit``/``commit``/``cancel``) are appended while the
coordinator still holds the locks of the affected state (the shard locks on
the sharded path), so the log order equals the commit order and a checkpoint
— which takes every coordinator lock — can never capture a state that is
"between" a match and its commit record.  The commit record is written
*before* the in-memory request records flip to ``ANSWERED``; a crash between
joint execution and the commit append simply leaves the group pending in the
log, and recovery re-matches it.  Plain-SQL ``data`` records are paired with
their application under the manager's checkpoint lock, which checkpoints also
take first, so a snapshot either contains both the record and its effect or
neither.

Group commit
------------
``fsync_policy`` controls when appended records are forced to disk:
``"always"`` fsyncs every record, ``"batch"`` (the default) fsyncs once per
append — or once per :meth:`WriteAheadLog.group_commit` scope, which
``submit_many`` wraps around a whole batch — and ``"never"`` leaves flushing
to the OS.  The group-commit scope is what keeps WAL-on batch submission
within a small factor of the WAL-off path (see
``benchmarks/bench_durability.py``).
"""

from __future__ import annotations

import json
import os
import re
import struct
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional, Sequence, Union

from repro.core import ir
from repro.core.compiler import entangled_to_sql
from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.coordinator import CoordinationRequest
    from repro.core.system import YoutopiaSystem


def _codec():
    """The remote transport's frame codec (lazy import).

    The WAL reuses :mod:`repro.service.remote.codec`'s framing (4-byte
    big-endian length prefix + UTF-8 JSON) so one codec defines both the
    on-wire and the on-disk format.  The import is deferred because the
    ``repro.service`` package itself imports the core at module load time.
    """
    from repro.service.remote import codec

    return codec

_HEADER = struct.Struct(">I")

#: On-disk format version of WAL records and snapshots.  Deliberately
#: independent of the wire codec's ``PROTOCOL_VERSION`` — the byte *framing*
#: is shared, but a network protocol bump must not invalidate durable logs.
WAL_VERSION = 1

#: On-disk format version of the snapshot file (the ``version`` field).
SNAPSHOT_VERSION = 1

#: Valid values of ``SystemConfig.fsync_policy``.
FSYNC_POLICIES = ("always", "batch", "never")

#: Record types journaled by the coordinator and the system facade.
RECORD_TYPES = ("submit", "commit", "cancel", "data", "declare")

SNAPSHOT_FILE = "snapshot.json"
WAL_FILE = "wal.log"
LOCK_FILE = "lock"

_QUERY_ID_PATTERN = re.compile(r"^q(\d+)$")


# ---------------------------------------------------------------------------
# The write-ahead log
# ---------------------------------------------------------------------------


def read_wal(path: Union[str, Path]) -> tuple[list[dict[str, Any]], int]:
    """Read every complete record of a WAL file.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the offset of
    the first incomplete or corrupt record.  A crash mid-append leaves a torn
    tail — a partial header, a body shorter than its declared length, or
    non-JSON garbage — which terminates the scan instead of raising: the
    valid prefix is exactly the durable history.
    """
    codec = _codec()
    records: list[dict[str, Any]] = []
    valid = 0
    path = Path(path)
    if not path.exists():
        return records, valid
    with open(path, "rb") as handle:
        while True:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break
            (length,) = _HEADER.unpack(header)
            if length > codec.MAX_FRAME_BYTES:
                break
            body = handle.read(length)
            if len(body) < length:
                break
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
            if not isinstance(payload, dict):
                break
            if payload.get("v") != WAL_VERSION:
                # A complete, well-formed record from another format version
                # is NOT a torn tail: truncating here would destroy a valid
                # log.  Surface it so the operator migrates instead.
                raise StorageError(
                    f"WAL record at offset {valid} has format version "
                    f"{payload.get('v')!r}; this build reads version {WAL_VERSION}"
                )
            records.append(payload)
            valid += _HEADER.size + length
    return records, valid


class WriteAheadLog:
    """An append-only log of length-prefixed JSON records with group commit.

    Thread-safe.  ``append`` assigns monotonically increasing log sequence
    numbers (LSNs); the fsync policy decides when records become durable (see
    the module docstring).  :meth:`group_commit` scopes defer the ``"batch"``
    policy's fsync to the end of the scope, so a whole ``submit_many`` batch
    costs one fsync.
    """

    def __init__(self, path: Union[str, Path], fsync_policy: str = "batch") -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise StorageError(
                f"unknown fsync policy {fsync_policy!r}; expected one of {FSYNC_POLICIES}"
            )
        self.path = Path(path)
        self.fsync_policy = fsync_policy
        self._lock = threading.RLock()
        # Log-shipping subscribers: called with each appended record *inside*
        # append(), after the record is durable per policy and before the
        # caller is acknowledged (ship-before-ack: an acked record has been
        # handed to every live subscriber).  A subscriber returning False is
        # dropped — the standby disconnected.
        self._subscribers: list[Callable[[dict[str, Any]], bool]] = []
        # Unbuffered: every write() goes straight to the OS, so tell() is a
        # true record boundary and a failed append can be rolled back without
        # fighting a stdio buffer.
        self._file = open(self.path, "ab", buffering=0)
        self._next_lsn = 1
        # Group-commit scope depth is *per thread*: only the thread inside a
        # submit_many batch defers its own fsyncs.  A concurrent single
        # submit from another thread must still fsync before acknowledging,
        # otherwise its record could be lost to a crash that happens before
        # the batching thread's scope-end fsync.
        self._batch = threading.local()
        self._unsynced = 0
        self.records_appended = 0
        self.fsync_count = 0
        self.group_commits = 0

    @property
    def _batch_depth(self) -> int:
        return getattr(self._batch, "depth", 0)

    # -- lsn bookkeeping ---------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        with self._lock:
            return self._next_lsn - 1

    def set_next_lsn(self, next_lsn: int) -> None:
        """Continue numbering after recovery (``max(applied) + 1``)."""
        with self._lock:
            self._next_lsn = max(self._next_lsn, next_lsn)

    # -- log shipping -----------------------------------------------------------------

    def add_subscriber(self, subscriber: Callable[[dict[str, Any]], bool]) -> None:
        """Stream every future record to ``subscriber`` (under the WAL lock).

        The subscriber runs synchronously inside :meth:`append` — replication
        is *synchronous*: a record is shipped before the appending caller is
        acknowledged, so an acked transition is either on the standby's socket
        or the standby is already gone.  Return ``False`` to unsubscribe.
        """
        with self._lock:
            self._subscribers.append(subscriber)

    def remove_subscriber(self, subscriber: Callable[[dict[str, Any]], bool]) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def _ship_locked(self, record: dict[str, Any]) -> None:
        if not self._subscribers:
            return
        kept = []
        for subscriber in self._subscribers:
            try:
                alive = subscriber(record)
            except Exception:  # noqa: BLE001 - a dead standby must not fail appends
                alive = False
            if alive:
                kept.append(subscriber)
        self._subscribers = kept

    # -- appending ---------------------------------------------------------------------

    def append(self, record_type: str, data: dict[str, Any]) -> int:
        """Append one record; returns its LSN.  Durability per fsync policy."""
        with self._lock:
            codec = _codec()
            lsn = self._next_lsn
            record = {"v": WAL_VERSION, "lsn": lsn, "type": record_type, "data": data}
            frame = codec.encode_frame(record)
            offset = self._file.tell()
            try:
                written = self._file.write(frame)
            except OSError:
                # A partial write (e.g. ENOSPC) must not leave a torn frame
                # in the *middle* of the log: later successful appends would
                # sit behind it, and the next restart's tail repair would
                # truncate them away — losing acknowledged records.  Roll
                # the file back to the last record boundary instead.
                self._rollback_to_locked(offset)
                raise
            if written != len(frame):
                self._rollback_to_locked(offset)
                raise StorageError(
                    f"short WAL append ({written} of {len(frame)} bytes written)"
                )
            self._next_lsn += 1
            self.records_appended += 1
            self._unsynced += 1
            if self.fsync_policy == "always":
                self._sync_locked()
            elif self.fsync_policy == "batch":
                if self._batch_depth == 0:
                    self._sync_locked()
                # inside this thread's group-commit scope: defer to scope end
            else:  # "never": hand the bytes to the OS, let it schedule the write
                self._file.flush()
            self._ship_locked(record)
            return lsn

    @contextmanager
    def group_commit(self) -> Iterator[None]:
        """Defer the ``"batch"`` policy's fsync to the end of this scope.

        The deferral is thread-local: appends from *other* threads keep their
        own durability guarantee.  Nested scopes coalesce into the outermost
        one.  ``"always"`` still fsyncs every record; ``"never"`` still never
        does.  A sync by any thread covers everything written before it, so
        the scope-end fsync is skipped when nothing is left unsynced.
        """
        self._batch.depth = self._batch_depth + 1
        try:
            yield
        finally:
            self._batch.depth = self._batch_depth - 1
            if self._batch_depth == 0:
                with self._lock:
                    if self._unsynced > 0 and self.fsync_policy == "batch":
                        self.group_commits += 1
                        self._sync_locked()

    def _rollback_to_locked(self, offset: int) -> None:
        """Best-effort truncate back to the last intact record boundary."""
        try:
            self._file.truncate(offset)
            self._file.seek(offset)
        except OSError:
            pass

    def _sync_locked(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        self.fsync_count += 1
        self._unsynced = 0

    def sync(self) -> None:
        """Force everything appended so far to disk (any policy)."""
        with self._lock:
            self._sync_locked()

    # -- truncation and lifecycle ------------------------------------------------------

    def reset(self) -> None:
        """Discard the log contents (after a snapshot); LSNs keep counting."""
        with self._lock:
            self._file.truncate(0)
            self._file.seek(0)
            self._file.flush()
            os.fsync(self._file.fileno())
            self._unsynced = 0

    def close(self) -> None:
        with self._lock:
            if self._file.closed:
                return
            self._file.flush()
            if self.fsync_policy != "never":
                os.fsync(self._file.fileno())
            self._file.close()


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


def _fsync_dir(path: Union[str, Path]) -> None:
    """Make a directory entry change (rename, create) power-loss durable.

    POSIX only promises rename durability after an fsync on the *directory*;
    both the snapshot rename and the bootstrap markers rely on this barrier.
    """
    try:
        dir_fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def write_snapshot(path: Union[str, Path], state: dict[str, Any]) -> None:
    """Atomically persist a snapshot (temp file + fsync + rename)."""
    path = Path(path)
    tmp = path.with_suffix(".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(state, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        # The rename itself must be durable before the caller truncates the
        # WAL: without a directory fsync a power loss can resurrect the old
        # snapshot next to an already-emptied log.
        _fsync_dir(path.parent)
    except Exception:
        try:  # do not leave a stale half-written .tmp behind
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise


def write_durable_marker(path: Union[str, Path]) -> None:
    """Create a marker file whose existence survives power loss.

    Used by the CLI's bootstrap protocol: decisions like "wipe and redo the
    bootstrap" hinge on marker presence, so the file *and* its directory
    entry are fsynced.
    """
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("ok\n")
        handle.flush()
        os.fsync(handle.fileno())
    _fsync_dir(path.parent)


def load_snapshot(path: Union[str, Path]) -> Optional[dict[str, Any]]:
    """Load a snapshot; ``None`` only when the file is absent.

    ``write_snapshot`` is atomic (tmp + fsync + rename + directory fsync),
    so an unreadable or version-skewed snapshot is never a benign torn
    write: silently discarding it would drop every checkpointed table,
    request and answer while the server starts "successfully".  Like a WAL
    version mismatch, it is a hard :class:`~repro.errors.StorageError` the
    operator must resolve.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(
            f"snapshot {path} is unreadable ({exc}); refusing to start over a "
            f"corrupt checkpoint — repair or remove the data directory explicitly"
        ) from exc
    if not isinstance(state, dict) or state.get("version") != SNAPSHOT_VERSION:
        version = state.get("version") if isinstance(state, dict) else None
        raise StorageError(
            f"snapshot {path} has format version {version!r}; this build reads "
            f"version {SNAPSHOT_VERSION}"
        )
    return state


# ---------------------------------------------------------------------------
# Recovery reporting
# ---------------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What one recovery pass found and rebuilt."""

    snapshot_loaded: bool = False
    snapshot_lsn: int = 0
    records_replayed: int = 0
    records_skipped: int = 0
    replay_errors: list[str] = field(default_factory=list)
    repaired_bytes: int = 0
    pending_recovered: int = 0
    answered_recovered: int = 0
    elapsed_seconds: float = 0.0

    @property
    def has_state(self) -> bool:
        """Whether the data directory held any previous state at all."""
        return self.snapshot_loaded or self.records_replayed > 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "snapshot_loaded": self.snapshot_loaded,
            "snapshot_lsn": self.snapshot_lsn,
            "records_replayed": self.records_replayed,
            "records_skipped": self.records_skipped,
            "replay_errors": len(self.replay_errors),
            "repaired_bytes": self.repaired_bytes,
            "pending_recovered": self.pending_recovered,
            "answered_recovered": self.answered_recovered,
            "elapsed_seconds": self.elapsed_seconds,
        }


# ---------------------------------------------------------------------------
# Serialization helpers (requests and answers)
# ---------------------------------------------------------------------------


def encode_request(request: "CoordinationRequest") -> dict[str, Any]:
    """One coordination request as a JSON-safe, replayable state dict."""
    codec = _codec()
    return {
        "query_id": request.query_id,
        "owner": request.owner,
        "status": request.status.value,
        "error": request.error,
        "sql": entangled_to_sql(request.query),
        "priority": request.query.priority,
        "registered_at": request.registered_at,
        "answered_at": request.answered_at,
        "group": list(request.group_query_ids),
        "answer": None if request.answer is None else codec.encode_answer(request.answer),
    }


def decode_answers(payload: Sequence[dict[str, Any]]) -> list[ir.GroundAnswer]:
    codec = _codec()
    return [
        codec.decode_answer(str(item["query_id"]), item.get("answer") or {})
        for item in payload
    ]


# ---------------------------------------------------------------------------
# The durability manager
# ---------------------------------------------------------------------------


class DurabilityManager:
    """Owns one data directory: the WAL, the snapshot, and recovery.

    Constructed by :class:`~repro.core.system.YoutopiaSystem` when
    ``SystemConfig.data_dir`` is set.  Construction reads (and repairs) any
    existing state but applies nothing; :meth:`recover` replays it into a
    freshly built system, after which the coordinator journals through the
    ``log_*`` methods.
    """

    def __init__(
        self,
        data_dir: Union[str, Path],
        fsync_policy: str = "batch",
        snapshot_interval: int = 1000,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.data_dir / SNAPSHOT_FILE
        self.wal_path = self.data_dir / WAL_FILE
        # One process per data directory: a second system opening the same
        # dir would truncate the first's in-flight WAL tail as "torn" and
        # interleave conflicting LSNs.  An advisory flock fails fast instead.
        self._lock_file = open(self.data_dir / LOCK_FILE, "a+b")
        try:
            import fcntl

            fcntl.flock(self._lock_file.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except ImportError:  # pragma: no cover - non-POSIX platform
            pass
        except OSError as exc:
            self._lock_file.close()
            raise StorageError(
                f"data directory {self.data_dir} is already in use by another "
                f"process (lock held on {LOCK_FILE}): {exc}"
            ) from exc
        self.snapshot_interval = max(0, int(snapshot_interval))
        self.snapshots_taken = 0
        self.checkpoint_failures = 0
        self.last_checkpoint_error: Optional[str] = None
        self.append_failures = 0
        self.last_append_error: Optional[str] = None
        self.last_recovery: Optional[RecoveryReport] = None
        self._checkpoint_lock = threading.RLock()
        self._closed = False

        # Read prior state before opening the log for append; a torn tail
        # record (crash mid-write) is truncated away so appends continue from
        # a clean record boundary.
        self._snapshot_state = load_snapshot(self.snapshot_path)
        snapshot_lsn = int((self._snapshot_state or {}).get("last_lsn", 0))
        records, valid_bytes = read_wal(self.wal_path)
        self._repaired_bytes = 0
        if self.wal_path.exists():
            actual = self.wal_path.stat().st_size
            if actual > valid_bytes:
                self._repaired_bytes = actual - valid_bytes
                with open(self.wal_path, "r+b") as handle:
                    handle.truncate(valid_bytes)
        self._tail_records = [
            record for record in records if int(record.get("lsn", 0)) > snapshot_lsn
        ]
        self.applied_lsn = snapshot_lsn
        last_logged = max((int(r.get("lsn", 0)) for r in records), default=0)
        self.wal = WriteAheadLog(self.wal_path, fsync_policy=fsync_policy)
        self.wal.set_next_lsn(max(snapshot_lsn, last_logged) + 1)
        # Checkpoint-due accounting is a watermark against the WAL's own
        # (lock-guarded) append counter — a plain shared counter would drop
        # increments when submit threads and match workers journal
        # concurrently.  The tail records found on disk count toward the
        # next snapshot.
        self._records_at_checkpoint = -len(self._tail_records)

    # -- journaling (called by the coordinator under its locks) ------------------------

    def log_submit(self, request: "CoordinationRequest") -> int:
        return self.wal.append(
            "submit",
            {
                "query_id": request.query_id,
                "owner": request.owner,
                "sql": entangled_to_sql(request.query),
                "priority": request.query.priority,
                "registered_at": request.registered_at,
            },
        )

    def log_commit(
        self,
        group_ids: Sequence[str],
        answers: Sequence[ir.GroundAnswer],
        answered_at: float,
    ) -> int:
        codec = _codec()
        return self.wal.append(
            "commit",
            {
                "group": list(group_ids),
                "answered_at": answered_at,
                "answers": [
                    {"query_id": answer.query_id, "answer": codec.encode_answer(answer)}
                    for answer in answers
                ],
            },
        )

    def log_cancel(self, query_id: str) -> int:
        return self.wal.append("cancel", {"query_id": query_id})

    def group_commit(self):
        """Batch scope for ``submit_many`` (one fsync for the whole batch)."""
        return self.wal.group_commit()

    # -- journaling (called by the system facade, no coordinator locks held) -----------

    def journaled_data(self, sql: str, apply: Callable[[], Any]) -> Any:
        """Apply a plain statement and journal it, atomically vs. checkpoints.

        Apply-then-log: the statement mutates only in-memory state, so the
        record *is* its durability — journaling before a failing apply would
        replay (and re-fail) the statement on every recovery, polluting
        ``replay_errors`` with phantom entries.  The record is durable (per
        policy) before ``execute()`` returns to the caller, which is what
        acknowledge-after-durable requires; the checkpoint lock makes the
        apply+append pair atomic against a concurrent snapshot cut.

        An append failure *after* a successful apply is swallowed and
        recorded (like a commit-record append failure): the statement took
        effect and the next snapshot will capture it — reporting it as the
        statement's failure would invite a double-apply retry.
        """
        with self._checkpoint_lock:
            result = apply()
            try:
                self.wal.append("data", {"sql": sql})
            except Exception as exc:  # noqa: BLE001 - divergence beats a gap
                self.note_append_failure(exc)
            return result

    def journaled_declare(
        self,
        name: str,
        columns: Optional[Sequence[str]],
        types: Optional[Sequence[str]],
        arity: Optional[int],
        apply: Callable[[], Any],
    ) -> Any:
        """Apply-then-log, like :meth:`journaled_data` (and for the same
        reasons: a failing declare must not replay as a phantom error, and
        an append failure after a successful declare is recorded, not
        surfaced as the declare's failure)."""
        with self._checkpoint_lock:
            result = apply()
            try:
                self.wal.append(
                    "declare",
                    {
                        "name": name,
                        "columns": None if columns is None else list(columns),
                        "types": None if types is None else list(types),
                        "arity": arity,
                    },
                )
            except Exception as exc:  # noqa: BLE001 - divergence beats a gap
                self.note_append_failure(exc)
            return result

    # -- checkpointing -----------------------------------------------------------------

    @property
    def records_since_checkpoint(self) -> int:
        return self.wal.records_appended - self._records_at_checkpoint

    def snapshot_due(self) -> bool:
        return (
            self.snapshot_interval > 0
            and self.records_since_checkpoint >= self.snapshot_interval
        )

    @contextmanager
    def checkpoint_scope(self) -> Iterator[None]:
        """Excludes ``data``/``declare`` journaling while a snapshot is cut.

        The coordinator takes this lock *before* its own locks, mirroring the
        journaled-data path (checkpoint lock → shard locks via the data-change
        listener), so the two cannot deadlock.
        """
        with self._checkpoint_lock:
            yield

    def install_checkpoint(self, state: dict[str, Any]) -> int:
        """Persist a captured state and truncate the log (locks held by caller)."""
        state["last_lsn"] = self.wal.last_lsn
        write_snapshot(self.snapshot_path, state)
        self.wal.reset()
        self.applied_lsn = max(self.applied_lsn, int(state["last_lsn"]))
        self._records_at_checkpoint = self.wal.records_appended
        self.snapshots_taken += 1
        return int(state["last_lsn"])

    # -- recovery ----------------------------------------------------------------------

    def recover(self, system: "YoutopiaSystem") -> RecoveryReport:
        """Rebuild ``system`` from the snapshot plus the repaired log tail.

        Must run before journaling is attached (the replayed transitions must
        not be re-journaled) and before application traffic starts.
        """
        report = RecoveryReport(repaired_bytes=self._repaired_bytes)
        started = time.perf_counter()
        coordinator = system.coordinator
        # Recovery-internal table writes must not mark shards dirty or arm
        # retry sweeps; the thread-local executor guard suppresses exactly
        # that (and is per-thread, so worker threads are unaffected).
        coordinator._executing.active = True
        try:
            if self._snapshot_state is not None:
                self._apply_snapshot(system, self._snapshot_state, report)
                report.snapshot_loaded = True
                report.snapshot_lsn = int(self._snapshot_state.get("last_lsn", 0))
            self.replay(system, self._tail_records, report)
        finally:
            coordinator._executing.active = False

        # Fresh submissions must not collide with recovered query ids: push
        # the process-wide id counter past everything we rebuilt (including
        # cancelled and rejected ids, which stay registered forever).
        highest = 0
        for request in coordinator.requests():
            match = _QUERY_ID_PATTERN.match(request.query_id)
            if match:
                highest = max(highest, int(match.group(1)))
        if highest:
            ir.advance_query_counter(highest + 1)

        report.pending_recovered = coordinator.pending_count()
        report.answered_recovered = sum(
            1 for request in coordinator.requests() if request.is_answered
        )
        report.elapsed_seconds = time.perf_counter() - started
        self.last_recovery = report
        self._snapshot_state = None
        self._tail_records = []
        return report

    def replay(
        self,
        system: "YoutopiaSystem",
        records: Optional[Sequence[dict[str, Any]]] = None,
        report: Optional[RecoveryReport] = None,
    ) -> RecoveryReport:
        """Apply log records above the already-applied LSN (idempotent).

        ``records=None`` re-reads the log file from disk.  Because every
        record's LSN is compared against ``applied_lsn``, replaying the same
        log twice applies each record exactly once.
        """
        if report is None:
            report = RecoveryReport()
        if records is None:
            records, _valid = read_wal(self.wal_path)
        for record in records:
            lsn = int(record.get("lsn", 0))
            if lsn <= self.applied_lsn:
                report.records_skipped += 1
                continue
            try:
                self._apply_record(system, record)
            except Exception as exc:  # noqa: BLE001 - a bad record must not abort recovery
                report.replay_errors.append(
                    f"lsn {lsn} ({record.get('type')}): {exc}"
                )
            self.applied_lsn = lsn
            report.records_replayed += 1
        return report

    def _apply_record(self, system: "YoutopiaSystem", record: dict[str, Any]) -> None:
        apply_wal_record(system, record)

    def _apply_snapshot(
        self, system: "YoutopiaSystem", state: dict[str, Any], report: RecoveryReport
    ) -> None:
        apply_snapshot_state(system, state, report)

    def subscribe_with_snapshot(
        self,
        system: "YoutopiaSystem",
        subscriber: Callable[[dict[str, Any]], bool],
    ) -> dict[str, Any]:
        """Atomically capture the recoverable state and attach a log subscriber.

        The standby-bootstrap primitive: the checkpoint scope plus every
        coordinator lock block *all* append paths (coordinator records append
        under coordinator locks; ``data``/``declare`` append under the
        checkpoint lock), so the returned state and the subscription are a
        consistent cut — no record falls between the snapshot and the stream.
        The state carries ``last_lsn``; the subscriber sees every record with
        a higher LSN exactly when it is appended (ship-before-ack).
        """
        with self.checkpoint_scope():
            with system.coordinator._checkpoint_locks():
                state = system.coordinator._capture_state_locked()
                state["last_lsn"] = self.wal.last_lsn
                self.wal.add_subscriber(subscriber)
        return state

    # -- introspection / lifecycle -----------------------------------------------------

    def note_checkpoint_failure(self, exc: Exception) -> None:
        """Record a failed background checkpoint (kept out of caller errors)."""
        self.checkpoint_failures += 1
        self.last_checkpoint_error = f"{type(exc).__name__}: {exc}"

    def note_append_failure(self, exc: Exception) -> None:
        """Record a swallowed journal-append failure (commit records only).

        A commit record that cannot be appended must not abort the already-
        committed joint execution — but the durability gap has to be visible
        somewhere, and this counter (surfaced through ``ServiceStats``) is
        that somewhere.
        """
        self.append_failures += 1
        self.last_append_error = f"{type(exc).__name__}: {exc}"

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` ran (checkpoints must no-op afterwards)."""
        return self._closed

    def stats(self) -> dict[str, Any]:
        """A JSON-safe durability summary (surfaced through ``ServiceStats``)."""
        return {
            "enabled": True,
            "data_dir": str(self.data_dir),
            "fsync_policy": self.wal.fsync_policy,
            "snapshot_interval": self.snapshot_interval,
            "wal_records_appended": self.wal.records_appended,
            "wal_last_lsn": self.wal.last_lsn,
            "wal_fsyncs": self.wal.fsync_count,
            "wal_group_commits": self.wal.group_commits,
            "wal_subscribers": self.wal.subscriber_count,
            "snapshots_taken": self.snapshots_taken,
            "checkpoint_failures": self.checkpoint_failures,
            "last_checkpoint_error": self.last_checkpoint_error,
            "append_failures": self.append_failures,
            "last_append_error": self.last_append_error,
            "records_since_checkpoint": self.records_since_checkpoint,
            "recovery": None if self.last_recovery is None else self.last_recovery.as_dict(),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.wal.close()
        self._lock_file.close()  # releases the advisory flock


# ---------------------------------------------------------------------------
# Replay primitives (shared by recovery and WAL-shipping followers)
# ---------------------------------------------------------------------------


def apply_wal_record(system: "YoutopiaSystem", record: dict[str, Any]) -> None:
    """Apply one WAL record to a system (idempotence is the caller's LSN guard).

    Used by :meth:`DurabilityManager.replay` during crash recovery and by a
    WAL-shipping standby (:mod:`repro.cluster.standby`) applying the primary's
    streamed records — one replay semantics for both.
    """
    record_type = record.get("type")
    data = record.get("data") or {}
    coordinator = system.coordinator
    if record_type == "submit":
        coordinator.recover_request(
            {
                "query_id": data["query_id"],
                "owner": data.get("owner"),
                "status": "pending",
                "sql": data.get("sql"),
                "priority": data.get("priority"),
                "registered_at": data.get("registered_at"),
            }
        )
    elif record_type == "commit":
        coordinator.apply_recovered_commit(
            tuple(data.get("group") or ()),
            decode_answers(data.get("answers") or ()),
            float(data.get("answered_at") or 0.0),
        )
    elif record_type == "cancel":
        coordinator.apply_recovered_cancel(str(data["query_id"]))
    elif record_type == "data":
        from repro.sqlparser import parse_statement

        system.engine.execute(parse_statement(str(data["sql"])))
    elif record_type == "declare":
        system.answer_relations.declare(
            str(data["name"]),
            columns=data.get("columns"),
            types=data.get("types"),
            arity=data.get("arity"),
        )
    else:
        raise StorageError(f"unknown WAL record type {record_type!r}")


def apply_snapshot_state(
    system: "YoutopiaSystem", state: dict[str, Any], report: RecoveryReport
) -> None:
    """Rebuild tables, answer relations, requests and counters from a snapshot.

    The snapshot twin of :func:`apply_wal_record`, likewise shared between
    crash recovery and standby bootstrap (the primary hands a joining standby
    this exact state shape via ``subscribe_with_snapshot``).
    """
    from repro.core.coordinator import PENDING_TABLE
    from repro.storage.schema import Column, ColumnType, TableSchema

    database = system.database
    for table_state in state.get("tables") or ():
        name = str(table_state["name"])
        if name.lower() == PENDING_TABLE:
            continue  # rebuilt from the recovered requests below
        columns = tuple(
            Column(
                str(column["name"]),
                ColumnType.from_name(str(column["type"])),
                bool(column.get("nullable", True)),
            )
            for column in table_state.get("columns") or ()
        )
        schema = TableSchema(name, columns, tuple(table_state.get("primary_key") or ()))
        if not database.has_table(name):
            database.create_table(schema)
        table = database.table(name)
        rows = table_state.get("rows") or ()
        if rows:
            table.insert_many(tuple(row) for row in rows)
        for index_state in table_state.get("indexes") or ():
            if index_state["name"] not in table.indexes():
                table.create_index(
                    str(index_state["name"]),
                    tuple(index_state.get("columns") or ()),
                    unique=bool(index_state.get("unique", False)),
                )
    for relation in state.get("answer_relations") or ():
        name = str(relation)
        if database.has_table(name):
            system.answer_relations.declare(
                name, columns=database.schema(name).column_names
            )
    for request_state in state.get("requests") or ():
        try:
            system.coordinator.recover_request(request_state)
        except Exception as exc:  # noqa: BLE001 - keep recovering the rest
            report.replay_errors.append(
                f"snapshot request {request_state.get('query_id')!r}: {exc}"
            )
    counters = state.get("counters")
    if counters:
        system.coordinator.statistics.load({k: int(v) for k, v in counters.items()})
