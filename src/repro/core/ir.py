"""Intermediate representation of entangled queries.

The query compiler translates the SQL form of an entangled query (the
``SELECT ... INTO ANSWER ... WHERE ... CHOOSE k`` statement of the demo paper)
into this Datalog-style representation, which is what the coordination
component actually works with:

* **head atoms** — the tuples the query contributes to answer relations
  (``R('Kramer', fno)``);
* **answer atoms** — the coordination constraints that must hold over the
  system-wide answer relation (``R('Jerry', fno)``);
* **domain constraints** — ``x IN (SELECT ...)`` conditions that tie variables
  to values present in the regular database;
* **predicates** — residual scalar conditions over the query's variables
  (``price < 600``);
* the **CHOOSE** bound.

Terms are either constants or named variables.  Variable names are scoped to
their query; the matcher distinguishes the variable ``fno`` of Jerry's query
from the ``fno`` of Kramer's query by pairing each variable with its query id.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Union

from repro.sqlparser import ast


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Constant:
    """A literal value appearing in an atom."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Variable:
    """A named variable, scoped to the query it appears in."""

    name: str

    def __str__(self) -> str:
        return self.name


Term = Union[Constant, Variable]


def is_ground(term: Term) -> bool:
    return isinstance(term, Constant)


# ---------------------------------------------------------------------------
# Atoms and constraints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    """A relational atom ``relation(t1, ..., tn)`` over an answer relation."""

    relation: str
    terms: tuple[Term, ...]

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> tuple[Variable, ...]:
        return tuple(term for term in self.terms if isinstance(term, Variable))

    def constants(self) -> tuple[tuple[int, Any], ...]:
        """(position, value) pairs for the constant positions of the atom."""
        return tuple(
            (index, term.value)
            for index, term in enumerate(self.terms)
            if isinstance(term, Constant)
        )

    def substitute(self, binding: dict[str, Any]) -> tuple[Any, ...]:
        """Instantiate the atom under a variable-name → value binding.

        Raises ``KeyError`` if a variable is unbound; callers are expected to
        only instantiate fully-determined atoms.
        """
        values: list[Any] = []
        for term in self.terms:
            if isinstance(term, Constant):
                values.append(term.value)
            else:
                values.append(binding[term.name])
        return tuple(values)

    def __str__(self) -> str:
        rendered = ", ".join(str(term) for term in self.terms)
        return f"{self.relation}({rendered})"


@dataclass(frozen=True)
class DomainConstraint:
    """``(v1, ..., vn) IN (SELECT ...)`` — ties variables to database values.

    ``variables`` is the tuple of variable names on the left-hand side (a
    single variable is the common case); ``subquery`` is the parsed SELECT that
    produces the candidate tuples.
    """

    variables: tuple[str, ...]
    subquery: ast.Select

    def __str__(self) -> str:
        from repro.sqlparser.pretty import format_statement

        left = ", ".join(self.variables)
        if len(self.variables) > 1:
            left = f"({left})"
        return f"{left} IN ({format_statement(self.subquery)})"


@dataclass(frozen=True)
class Predicate:
    """A residual scalar condition over the query's variables."""

    expression: ast.Expression
    variables: tuple[str, ...]

    def __str__(self) -> str:
        from repro.sqlparser.pretty import format_expression

        return format_expression(self.expression)


# ---------------------------------------------------------------------------
# The entangled query
# ---------------------------------------------------------------------------

_query_counter = itertools.count(1)


def next_query_id() -> str:
    """Generate a fresh query id (``q1``, ``q2``, ...)."""
    return f"q{next(_query_counter)}"


def advance_query_counter(minimum_next: int) -> None:
    """Ensure the next generated id is at least ``q{minimum_next}``.

    Recovery calls this after rebuilding a system from a durability log: the
    counter is process-global and restarts at 1, so without the bump a fresh
    submission on a restarted server would collide with a recovered query id
    (including cancelled and rejected ids, which stay registered forever).
    """
    global _query_counter
    current = next(_query_counter)
    _query_counter = itertools.count(max(current, minimum_next))


@dataclass(frozen=True)
class EntangledQuery:
    """The compiled form of one entangled query."""

    query_id: str
    heads: tuple[Atom, ...]
    answer_atoms: tuple[Atom, ...] = ()
    domains: tuple[DomainConstraint, ...] = ()
    predicates: tuple[Predicate, ...] = ()
    choose: int = 1
    owner: Optional[str] = None
    sql: Optional[str] = None
    # Optional per-query weight consumed by the ``priority`` match policy
    # (larger wins).  ``None`` is treated as 0.0 by the policy layer.
    priority: Optional[float] = None

    # -- introspection ----------------------------------------------------------

    def variables(self) -> frozenset[str]:
        """All variable names appearing anywhere in the query."""
        names: set[str] = set()
        for atom in itertools.chain(self.heads, self.answer_atoms):
            names.update(variable.name for variable in atom.variables())
        for domain in self.domains:
            names.update(domain.variables)
        for predicate in self.predicates:
            names.update(predicate.variables)
        return frozenset(names)

    def head_variables(self) -> frozenset[str]:
        names: set[str] = set()
        for atom in self.heads:
            names.update(variable.name for variable in atom.variables())
        return frozenset(names)

    def answer_variables(self) -> frozenset[str]:
        names: set[str] = set()
        for atom in self.answer_atoms:
            names.update(variable.name for variable in atom.variables())
        return frozenset(names)

    def domain_variables(self) -> frozenset[str]:
        names: set[str] = set()
        for domain in self.domains:
            names.update(domain.variables)
        return frozenset(names)

    def answer_relations(self) -> frozenset[str]:
        """All answer relation names this query mentions (heads + constraints)."""
        return frozenset(
            atom.relation for atom in itertools.chain(self.heads, self.answer_atoms)
        )

    def replace_owner(self, owner: Optional[str]) -> "EntangledQuery":
        """A copy of this query attributed to ``owner``.

        Uses :func:`dataclasses.replace` so every field — including any added
        in the future — is carried over.
        """
        return dataclasses.replace(self, owner=owner)

    def is_self_contained(self) -> bool:
        """Whether the query has no coordination constraints at all.

        Such a query can be answered on its own; it still flows through the
        coordination component so that its answers land in answer relations,
        but no partner queries are needed.
        """
        return not self.answer_atoms

    def heads_for_relation(self, relation: str) -> Iterator[tuple[int, Atom]]:
        lowered = relation.lower()
        for index, atom in enumerate(self.heads):
            if atom.relation.lower() == lowered:
                yield index, atom

    def describe(self) -> str:
        """A compact human-readable rendering used by the admin interface."""
        parts = [" & ".join(str(atom) for atom in self.heads)]
        body: list[str] = []
        body.extend(str(domain) for domain in self.domains)
        body.extend(str(predicate) for predicate in self.predicates)
        body.extend(str(atom) for atom in self.answer_atoms)
        if body:
            parts.append(" :- " + ", ".join(body))
        parts.append(f"  [CHOOSE {self.choose}]")
        return "".join(parts)

    def __str__(self) -> str:
        return f"EntangledQuery({self.query_id}: {self.describe()})"


@dataclass(frozen=True)
class GroundAnswer:
    """One query's share of a coordinated answer.

    ``tuples`` maps each answer relation to the tuples this query contributed.
    ``binding`` is the variable valuation the executor chose for the query.
    """

    query_id: str
    binding: dict[str, Any] = field(default_factory=dict)
    tuples: dict[str, tuple[tuple[Any, ...], ...]] = field(default_factory=dict)

    def all_tuples(self) -> list[tuple[str, tuple[Any, ...]]]:
        pairs: list[tuple[str, tuple[Any, ...]]] = []
        for relation, relation_tuples in sorted(self.tuples.items()):
            for values in relation_tuples:
                pairs.append((relation, values))
        return pairs
