"""A minimal transaction layer over the in-memory catalog.

**Role**: the atomicity substrate of joint execution.  Youtopia answers a
matched group of entangled queries *jointly*: either every query in the
group receives its answer tuple (and every side-effect row is written) or
none does.

**Paper correspondence**: Section 2.2 of the demo paper, where the execution
engine runs "queries and updates" on behalf of the coordination component
and leans on the DBMS's usual transactional machinery for all-or-nothing
effects; our substrate provides the same guarantee with whole-database
snapshots — perfectly adequate at laptop scale and easy to reason about.

The manager also doubles as the system's coarse concurrency control: a single
re-entrant lock serialises transactions, which is the "isolation by default"
baseline that entangled queries then selectively relax *at the semantic level*
(queries coordinate their answers) without ever compromising physical atomicity.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.errors import TransactionError
from repro.storage.database import Database


class TransactionManager:
    """Snapshot-based transactions with a serialising lock."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self._lock = threading.RLock()
        self._depth = 0
        self._aborted = False
        self._snapshot: dict[str, dict[int, tuple[Any, ...]]] | None = None
        self.commits = 0
        self.rollbacks = 0

    # -- explicit API ----------------------------------------------------------------

    def begin(self) -> None:
        """Start a transaction.  Nested begins join the outer transaction."""
        self._lock.acquire()
        if self._depth == 0:
            self._snapshot = self._database.snapshot()
            self._aborted = False
        self._depth += 1

    def commit(self) -> None:
        """Commit the current level.

        If an inner level already rolled back, the whole transaction is
        considered aborted and the outer commit finalises the rollback instead
        of silently committing partial state.
        """
        if self._depth == 0:
            raise TransactionError("commit without an active transaction")
        self._depth -= 1
        if self._depth == 0:
            if self._aborted:
                self.rollbacks += 1
            else:
                self.commits += 1
            self._snapshot = None
            self._aborted = False
        self._lock.release()

    def rollback(self) -> None:
        """Abort: restore the snapshot taken at the outermost ``begin``."""
        if self._depth == 0:
            raise TransactionError("rollback without an active transaction")
        assert self._snapshot is not None
        self._database.restore(self._snapshot)
        self._aborted = True
        self._depth -= 1
        if self._depth == 0:
            self._snapshot = None
            self._aborted = False
            self.rollbacks += 1
        self._lock.release()

    @property
    def in_transaction(self) -> bool:
        return self._depth > 0

    # -- context manager ----------------------------------------------------------------

    @contextmanager
    def atomic(self) -> Iterator[None]:
        """``with transactions.atomic(): ...`` — commit on success, rollback on error."""
        self.begin()
        try:
            yield
        except BaseException:
            self.rollback()
            raise
        else:
            self.commit()
