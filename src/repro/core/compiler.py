"""The query compiler: entangled SQL → internal representation.

"The query compiler processes them and translates them to an intermediate
representation inside Youtopia for processing by the coordination component"
(demo paper, Section 2.2).  The compiler accepts the AST produced by
:mod:`repro.sqlparser` (or raw SQL text) and emits an
:class:`~repro.core.ir.EntangledQuery`.

The supported fragment mirrors the paper's examples:

* one or more ``expr_list INTO ANSWER relation`` heads whose items are string /
  numeric constants or variables (bare column names);
* a conjunctive WHERE clause whose conjuncts are
  - domain constraints ``x IN (SELECT ...)`` / ``(x, y) IN (SELECT ...)``,
  - coordination constraints ``(e1, ..., en) IN ANSWER relation``,
  - residual scalar predicates over the query's variables;
* an optional ``CHOOSE k`` (default 1).

Programmatic construction is available through :class:`EntangledQueryBuilder`,
which is what the travel application's middle tier uses.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Union

from repro.errors import CompilationError
from repro.core import ir
from repro.sqlparser import ast, parse_statement
from repro.sqlparser.pretty import format_statement


def _compile_term(expression: ast.Expression, context: str) -> ir.Term:
    """Turn a head/answer-atom item into a constant or variable term."""
    if isinstance(expression, ast.Literal):
        if expression.value is None:
            raise CompilationError(f"NULL is not allowed in {context}")
        return ir.Constant(expression.value)
    if isinstance(expression, ast.UnaryOp) and expression.operator == "-" and isinstance(
        expression.operand, ast.Literal
    ):
        value = expression.operand.value
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise CompilationError(f"cannot negate {value!r} in {context}")
        return ir.Constant(-value)
    if isinstance(expression, ast.ColumnRef):
        if expression.table is not None:
            raise CompilationError(
                f"qualified reference {expression.qualified!r} is not allowed in {context}; "
                "entangled queries bind variables through IN (SELECT ...) constraints"
            )
        return ir.Variable(expression.name.lower())
    raise CompilationError(
        f"{context} items must be constants or variables, got: {type(expression).__name__}"
    )


def _contains_answer_membership(expression: ast.Expression) -> bool:
    return any(
        isinstance(node, ast.AnswerMembership) for node in ast.walk_expression(expression)
    )


def _predicate_variables(expression: ast.Expression) -> tuple[str, ...]:
    names: list[str] = []
    for ref in ast.expression_column_refs(expression):
        if ref.table is not None:
            raise CompilationError(
                f"qualified reference {ref.qualified!r} is not allowed in an "
                "entangled WHERE clause"
            )
        lowered = ref.name.lower()
        if lowered not in names:
            names.append(lowered)
    return tuple(names)


def compile_entangled(
    statement: Union[ast.EntangledSelect, str],
    owner: Optional[str] = None,
    query_id: Optional[str] = None,
) -> ir.EntangledQuery:
    """Compile an entangled SELECT (AST node or SQL text) into the IR."""
    if isinstance(statement, str):
        parsed = parse_statement(statement)
        if not isinstance(parsed, ast.EntangledSelect):
            raise CompilationError(
                "expected an entangled query (SELECT ... INTO ANSWER ...), got plain SQL"
            )
        statement = parsed

    if statement.from_table is not None or statement.joins:
        raise CompilationError(
            "entangled queries do not take a FROM clause; bind variables with "
            "'x IN (SELECT ...)' constraints in the WHERE clause instead"
        )
    if statement.choose < 1:
        raise CompilationError("CHOOSE must be at least 1")

    heads: list[ir.Atom] = []
    for head in statement.heads:
        terms = tuple(_compile_term(item, "an INTO ANSWER head") for item in head.items)
        heads.append(ir.Atom(head.relation, terms))
    if not heads:
        raise CompilationError("an entangled query needs at least one INTO ANSWER head")

    answer_atoms: list[ir.Atom] = []
    domains: list[ir.DomainConstraint] = []
    predicates: list[ir.Predicate] = []

    conjuncts: list[ast.Expression] = []
    if statement.where is not None:
        from repro.relalg.optimizer import split_conjuncts

        conjuncts = split_conjuncts(statement.where)

    for conjunct in conjuncts:
        if isinstance(conjunct, ast.AnswerMembership):
            if conjunct.negated:
                raise CompilationError(
                    "NOT IN ANSWER constraints are not part of the published semantics"
                )
            terms = tuple(
                _compile_term(item, "an IN ANSWER constraint") for item in conjunct.items
            )
            answer_atoms.append(ir.Atom(conjunct.relation, terms))
            continue

        if isinstance(conjunct, ast.InSubquery) and not conjunct.negated:
            operand = conjunct.operand
            if isinstance(operand, ast.ColumnRef):
                variables: tuple[str, ...] = (operand.name.lower(),)
            elif isinstance(operand, ast.TupleExpr) and all(
                isinstance(item, ast.ColumnRef) for item in operand.items
            ):
                variables = tuple(item.name.lower() for item in operand.items)  # type: ignore[union-attr]
            else:
                variables = ()
            if variables:
                if any("." in variable for variable in variables):
                    raise CompilationError(
                        "qualified references are not allowed in domain constraints"
                    )
                domains.append(ir.DomainConstraint(variables, conjunct.subquery))
                continue
            #

        # Everything else is a residual predicate — but coordination constraints
        # must not hide inside disjunctions or negations.
        if _contains_answer_membership(conjunct):
            raise CompilationError(
                "IN ANSWER constraints must appear as top-level conjuncts of the WHERE clause"
            )
        predicates.append(ir.Predicate(conjunct, _predicate_variables(conjunct)))

    if statement.choose > 1 and answer_atoms:
        raise CompilationError(
            "CHOOSE k with k > 1 is only supported for queries without IN ANSWER "
            "constraints in this reproduction (the demo scenarios all use CHOOSE 1)"
        )

    query = ir.EntangledQuery(
        query_id=query_id or ir.next_query_id(),
        heads=tuple(heads),
        answer_atoms=tuple(answer_atoms),
        domains=tuple(domains),
        predicates=tuple(predicates),
        choose=statement.choose,
        owner=owner,
        sql=format_statement(statement),
    )
    return query


class EntangledQueryBuilder:
    """Fluent programmatic construction of entangled queries.

    The travel application's middle tier builds coordination requests with
    this builder rather than by string-formatting SQL::

        query = (
            EntangledQueryBuilder(owner="Jerry")
            .head("Reservation", "Jerry", var("fno"))
            .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Paris'")
            .require("Reservation", "Kramer", var("fno"))
            .build()
        )
    """

    def __init__(self, owner: Optional[str] = None) -> None:
        self._owner = owner
        self._heads: list[ir.Atom] = []
        self._answer_atoms: list[ir.Atom] = []
        self._domains: list[ir.DomainConstraint] = []
        self._predicates: list[ir.Predicate] = []
        self._choose = 1

    # -- term helpers ------------------------------------------------------------------

    @staticmethod
    def _to_term(value: Any) -> ir.Term:
        if isinstance(value, (ir.Constant, ir.Variable)):
            return value
        if isinstance(value, (str, int, float, bool)):
            return ir.Constant(value)
        raise CompilationError(f"cannot use {value!r} as an atom term")

    # -- builder steps ------------------------------------------------------------------

    def head(self, relation: str, *terms: Any) -> "EntangledQueryBuilder":
        """Add an ``INTO ANSWER relation`` head with the given terms."""
        self._heads.append(ir.Atom(relation, tuple(self._to_term(t) for t in terms)))
        return self

    def require(self, relation: str, *terms: Any) -> "EntangledQueryBuilder":
        """Add an ``IN ANSWER relation`` coordination constraint."""
        self._answer_atoms.append(ir.Atom(relation, tuple(self._to_term(t) for t in terms)))
        return self

    def domain(
        self, variables: str | Sequence[str], subquery: str | ast.Select
    ) -> "EntangledQueryBuilder":
        """Add an ``x IN (SELECT ...)`` domain constraint."""
        if isinstance(variables, str):
            variable_names: tuple[str, ...] = (variables.lower(),)
        else:
            variable_names = tuple(name.lower() for name in variables)
        if isinstance(subquery, str):
            parsed = parse_statement(subquery)
            if not isinstance(parsed, ast.Select):
                raise CompilationError("domain constraints need a plain SELECT subquery")
            subquery = parsed
        self._domains.append(ir.DomainConstraint(variable_names, subquery))
        return self

    def predicate(self, condition: str | ast.Expression) -> "EntangledQueryBuilder":
        """Add a residual scalar condition (SQL text or expression AST)."""
        if isinstance(condition, str):
            # Parse the condition by wrapping it in a throwaway SELECT.
            parsed = parse_statement(f"SELECT 1 WHERE {condition}")
            assert isinstance(parsed, ast.Select) and parsed.where is not None
            condition = parsed.where
        if _contains_answer_membership(condition):
            raise CompilationError("use .require() for IN ANSWER constraints")
        self._predicates.append(ir.Predicate(condition, _predicate_variables(condition)))
        return self

    def choose(self, count: int) -> "EntangledQueryBuilder":
        if count < 1:
            raise CompilationError("CHOOSE must be at least 1")
        self._choose = count
        return self

    def build(self, query_id: Optional[str] = None) -> ir.EntangledQuery:
        if not self._heads:
            raise CompilationError("an entangled query needs at least one head")
        if self._choose > 1 and self._answer_atoms:
            raise CompilationError(
                "CHOOSE k with k > 1 is only supported for queries without "
                "coordination constraints"
            )
        return ir.EntangledQuery(
            query_id=query_id or ir.next_query_id(),
            heads=tuple(self._heads),
            answer_atoms=tuple(self._answer_atoms),
            domains=tuple(self._domains),
            predicates=tuple(self._predicates),
            choose=self._choose,
            owner=self._owner,
            sql=None,
        )


def var(name: str) -> ir.Variable:
    """Shorthand for creating a variable term in builder calls."""
    return ir.Variable(name.lower())


def entangled_to_sql(query: ir.EntangledQuery) -> str:
    """Render an IR query back to entangled SQL.

    Used for display *and* for the durability journal (a builder-made query
    records no SQL of its own), so constants are rendered with the SQL
    pretty-printer's literal rules (``''`` escaping, ``TRUE``/``NULL``) —
    the output must survive a trip through :func:`compile_entangled` on
    recovery, not just look readable.
    """
    if query.sql:
        return query.sql
    from repro.sqlparser.pretty import format_expression, format_literal

    def term_sql(term: ir.Term) -> str:
        return format_literal(term.value) if isinstance(term, ir.Constant) else term.name

    head_parts = []
    for atom in query.heads:
        items = ", ".join(term_sql(term) for term in atom.terms)
        head_parts.append(f"{items} INTO ANSWER {atom.relation}")
    clauses: list[str] = []
    for domain in query.domains:
        clauses.append(str(domain))
    for predicate in query.predicates:
        clauses.append(format_expression(predicate.expression))
    for atom in query.answer_atoms:
        items = ", ".join(term_sql(term) for term in atom.terms)
        clauses.append(f"({items}) IN ANSWER {atom.relation}")
    where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
    return f"SELECT {', '.join(head_parts)}{where} CHOOSE {query.choose}"
