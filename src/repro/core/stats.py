"""Aggregate statistics of the coordination component.

The administrative interface of the demo "allows us to show the internal state
of the system"; these counters are part of that state and are also what the
scalability benchmarks report.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.matching import MatchStatistics


@dataclass
class CoordinationStatistics:
    """Monotonic counters maintained by the coordinator."""

    queries_registered: int = 0
    queries_rejected: int = 0
    queries_answered: int = 0
    queries_cancelled: int = 0
    queries_timed_out: int = 0
    groups_matched: int = 0
    match_attempts: int = 0
    failed_match_attempts: int = 0
    executions_failed: int = 0
    structural_nodes: int = 0
    unification_attempts: int = 0
    grounding_attempts: int = 0
    domain_queries: int = 0
    match_events: int = 0
    retry_sweeps: int = 0
    cross_shard_passes: int = 0
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False, compare=False)

    def increment(self, **deltas: int) -> None:
        """Atomically bump a set of counters (used by worker threads)."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def record_match_attempt(self, succeeded: bool, match_stats: MatchStatistics) -> None:
        with self._lock:
            self.match_attempts += 1
            if not succeeded:
                self.failed_match_attempts += 1
            self.structural_nodes += match_stats.structural_nodes
            self.unification_attempts += match_stats.unification_attempts
            self.grounding_attempts += match_stats.grounding_attempts
            self.domain_queries += match_stats.domain_queries

    def load(self, counters: dict[str, int]) -> None:
        """Restore counter values (recovery from a durability snapshot)."""
        with self._lock:
            for name, value in counters.items():
                if hasattr(self, name) and not name.startswith("_"):
                    setattr(self, name, value)

    def as_dict(self) -> dict[str, int]:
        """A plain dictionary view (for the admin interface and benchmarks)."""
        return {
            "queries_registered": self.queries_registered,
            "queries_rejected": self.queries_rejected,
            "queries_answered": self.queries_answered,
            "queries_cancelled": self.queries_cancelled,
            "queries_timed_out": self.queries_timed_out,
            "groups_matched": self.groups_matched,
            "match_attempts": self.match_attempts,
            "failed_match_attempts": self.failed_match_attempts,
            "executions_failed": self.executions_failed,
            "structural_nodes": self.structural_nodes,
            "unification_attempts": self.unification_attempts,
            "grounding_attempts": self.grounding_attempts,
            "domain_queries": self.domain_queries,
            "match_events": self.match_events,
            "retry_sweeps": self.retry_sweeps,
            "cross_shard_passes": self.cross_shard_passes,
        }
