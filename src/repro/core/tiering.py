"""Tiered pending pool: hot queries in shard memory, cold ones spilled.

The paper's steady state is thousands of entangled queries parked waiting
for coordination partners.  Keeping each one fully materialized — parsed
domain subqueries, predicate trees, compiled match plans — caps the pool at
process memory.  This module bounds that: each shard's pending pool becomes
a :class:`TieredPool` holding at most ``capacity`` fully-materialized *hot*
queries; everything beyond is evicted to a pluggable
:class:`~repro.storage.backends.PendingStoreBackend` and *paged back in on
demand*.

What stays resident for a cold query — and why that is enough:

* **Its provider-index entries.**  Eviction never touches the shard's
  provider index, so a cold query is still discoverable as a coordination
  candidate.  When the matcher probes the pool for a candidate hit
  (``pool.get(candidate.query_id)``) the tiered pool transparently pages the
  query back in *before* the match attempt — candidate enumeration order,
  RNG consumption and committed answers are byte-identical to an untiered
  pool (proven by the differential fuzz pass in
  ``tests/integration/test_sharded_fuzz.py``).
* **A structural stub.**  The cold side keeps a slimmed
  :class:`~repro.core.ir.EntangledQuery` — heads, answer atoms, owner,
  priority and the materialized SQL, with the bulky ``domains`` /
  ``predicates`` bodies dropped.  The stub answers every probe that does not
  need matching semantics: shard routing, ``in`` / ``len`` membership, id
  sweeps, index removal when the query leaves the pool, and snapshot/wire
  encoding (the SQL string is exact, so journaling stays faithful).
* **Nothing else.**  Compiled match plans are evicted with the query (they
  are derived state keyed by IR object identity and recompile transparently
  after a page-in), and the full payload lives only in the backend.

Page-in recompiles the query from its spilled SQL exactly the way WAL
recovery does (:meth:`~repro.core.coordinator.Coordinator.recover_request`),
so a round trip through the cold store is the same transformation a crash
restart already guarantees to preserve.  The stored payload is *not* deleted
on page-in — only when the query leaves the pending pool for good — so a
snapshot that references cold entries (see ``_capture_state_locked``) can
always resolve them, even if the query paged in and back out around the
checkpoint.

Locking: a :class:`TieredPool` has no lock of its own.  Every access happens
under the lock that already guards the underlying pool — the shard lock for
sharded pools, the coordinator lock inline — and the eviction/page-in hooks
re-enter the coordinator under its request lock, which the established
ordering (shard locks before ``self._lock``) permits.  The shared backend
serializes internally.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Iterator, Optional

from repro.core import ir
from repro.core.compiler import compile_entangled, entangled_to_sql
from repro.errors import StorageError, YoutopiaError
from repro.storage.backends import (
    PendingStoreBackend,
    decode_payload,
    encode_payload,
)

#: Eviction orders the tiered pool understands.
EVICTION_POLICIES = ("lru", "fifo")

_MISSING = object()


def make_stub(query: ir.EntangledQuery) -> ir.EntangledQuery:
    """The resident skeleton of an evicted query.

    Heads and answer atoms survive (shard routing, index removal and
    membership need them); ``sql`` is materialized via
    :func:`~repro.core.compiler.entangled_to_sql` so builder-made queries
    keep an exact journalable form; the parsed ``domains`` and ``predicates``
    — the bulk of a query's memory — are dropped.  A stub must never be
    handed to the matcher: with its constraints gone it would match
    unconstrained.  The pool guarantees that by paging in on every ``get``.
    """
    return dataclasses.replace(
        query, sql=entangled_to_sql(query), domains=(), predicates=()
    )


def recompile_stub(
    query_id: str, sql: str, owner: Optional[str], priority: Optional[float]
) -> ir.EntangledQuery:
    """Rebuild the full query from its spilled payload (the recovery recipe)."""
    try:
        query = dataclasses.replace(
            compile_entangled(str(sql), owner=owner), query_id=query_id
        )
    except YoutopiaError as exc:
        raise StorageError(
            f"cold store page-in could not recompile query {query_id!r}: {exc}"
        ) from exc
    if priority is not None:
        query = dataclasses.replace(query, priority=float(priority))
    return query


class TieredPool:
    """A hot/cold pending pool with the mapping surface the coordinator uses.

    Drop-in for the per-shard ``dict[str, EntangledQuery]``: ``get`` /
    ``[]`` return the *full* query (paging it in when cold), membership and
    iteration cover both tiers without IO, ``values()`` / ``items()`` peek
    cold entries as stubs (introspection must not thrash the hot set), and
    ``pop`` removes from either tier, deleting the spilled payload.
    """

    def __init__(self, manager: "TieringManager") -> None:
        self._manager = manager
        self._hot: dict[str, ir.EntangledQuery] = {}
        self._cold: dict[str, ir.EntangledQuery] = {}
        # Arrival order of every resident id, hot or cold.  Iteration and
        # keys() follow it so id sweeps (dirty retries, admin listings) see
        # exactly the order an untiered dict pool would — tier transitions
        # reorder ``_hot`` for LRU accounting but never the visible order.
        self._seq: dict[str, None] = {}
        self.evictions = 0
        self.page_ins = 0
        self.page_in_seconds = 0.0
        self.peak_hot = 0

    # -- mapping surface ---------------------------------------------------------------

    def __setitem__(self, query_id: str, query: ir.EntangledQuery) -> None:
        self._seq.setdefault(query_id, None)
        self._cold.pop(query_id, None)
        self._hot[query_id] = query
        if len(self._hot) > self.peak_hot:
            self.peak_hot = len(self._hot)
        self._evict_overflow()

    def get(
        self, query_id: str, default: Optional[ir.EntangledQuery] = None
    ) -> Optional[ir.EntangledQuery]:
        query = self._hot.get(query_id)
        if query is not None:
            if self._manager.eviction_policy == "lru":
                self._hot[query_id] = self._hot.pop(query_id)
            return query
        if query_id in self._cold:
            return self._page_in(query_id)
        return default

    def __getitem__(self, query_id: str) -> ir.EntangledQuery:
        query = self.get(query_id)
        if query is None:
            raise KeyError(query_id)
        return query

    def pop(self, query_id: str, *default: Any) -> Any:
        """Remove from either tier; returns the full query or the cold stub.

        The returned object always carries the query's heads, which is all
        index removal needs — a cold departure (answered partner, cancel,
        recovery discard) costs one backend delete, never a recompile.  The
        delete runs after the caller has journaled the departure (commit and
        cancel records are appended before pool mutation), so a crash can
        never lose a payload the log still considers pending.
        """
        query = self._hot.pop(query_id, None)
        if query is None:
            query = self._cold.pop(query_id, None)
        if query is None:
            if default:
                return default[0]
            raise KeyError(query_id)
        self._seq.pop(query_id, None)
        self._manager.backend.delete(query_id)
        return query

    def __contains__(self, query_id: object) -> bool:
        return query_id in self._seq

    def __len__(self) -> int:
        return len(self._seq)

    def __bool__(self) -> bool:
        return bool(self._seq)

    def __iter__(self) -> Iterator[str]:
        yield from list(self._seq)

    def keys(self) -> list[str]:
        return list(self._seq)

    def values(self) -> list[ir.EntangledQuery]:
        """Hot queries plus cold *stubs* — introspection without page-ins."""
        return [self._peek(query_id) for query_id in self._seq]

    def items(self) -> list[tuple[str, ir.EntangledQuery]]:
        return [(query_id, self._peek(query_id)) for query_id in self._seq]

    def _peek(self, query_id: str) -> ir.EntangledQuery:
        """The resident object of either tier, with no touch and no IO."""
        query = self._hot.get(query_id)
        return query if query is not None else self._cold[query_id]

    # -- tier introspection ------------------------------------------------------------

    def hot_count(self) -> int:
        return len(self._hot)

    def cold_count(self) -> int:
        return len(self._cold)

    def is_cold(self, query_id: str) -> bool:
        return query_id in self._cold

    def cold_ids(self) -> list[str]:
        return list(self._cold)

    # -- tier transitions --------------------------------------------------------------

    def _evict_overflow(self) -> None:
        capacity = self._manager.capacity
        while len(self._hot) > capacity:
            victim_id = next(iter(self._hot))
            victim = self._hot.pop(victim_id)
            self._manager.backend.put(
                victim_id,
                encode_payload(entangled_to_sql(victim), victim.owner, victim.priority),
            )
            stub = make_stub(victim)
            self._cold[victim_id] = stub
            self.evictions += 1
            self._manager.on_evict(victim_id, stub)

    def _page_in(self, query_id: str) -> ir.EntangledQuery:
        started = time.perf_counter()
        payload = self._manager.backend.get(query_id)
        if payload is None:
            # The invariant "backend ⊇ cold set" broke: matching with the
            # stub would ignore the query's constraints, so fail loudly.
            raise StorageError(
                f"cold store lost the payload of pending query {query_id!r}"
            )
        decoded = decode_payload(payload)
        query = recompile_stub(
            query_id,
            str(decoded["sql"]),
            decoded.get("owner"),
            decoded.get("priority"),
        )
        del self._cold[query_id]
        self._hot[query_id] = query
        if len(self._hot) > self.peak_hot:
            self.peak_hot = len(self._hot)
        self.page_ins += 1
        self.page_in_seconds += time.perf_counter() - started
        self._manager.on_page_in(query_id, query)
        # Note: the spilled payload stays in the backend until the query
        # leaves the pool — a snapshot cut before this page-in may reference
        # it, and re-eviction would only rewrite the identical bytes.
        self._evict_overflow()
        return query


class TieringManager:
    """Owns the cold-store backend and the per-shard tiered pools.

    The coordinator creates one manager when ``pending_memory_limit`` is
    configured, then asks it for one pool per shard (plus the global
    residence).  ``pending_memory_limit`` is a *system-wide* bound on
    fully-materialized pending queries: the budget is split evenly across
    pools, so the sum of hot sets never exceeds the limit (each pool keeps a
    floor of one hot slot — the query being matched must be materialized).
    """

    def __init__(
        self,
        backend: PendingStoreBackend,
        memory_limit: int,
        eviction_policy: str = "lru",
        on_evict: Optional[Callable[[str, ir.EntangledQuery], None]] = None,
        on_page_in: Optional[Callable[[str, ir.EntangledQuery], None]] = None,
    ) -> None:
        if memory_limit < 1:
            raise ValueError("pending_memory_limit must be >= 1 when tiering is enabled")
        if eviction_policy not in EVICTION_POLICIES:
            known = ", ".join(EVICTION_POLICIES)
            raise ValueError(
                f"unknown eviction_policy {eviction_policy!r} (known policies: {known})"
            )
        self.backend = backend
        self.memory_limit = memory_limit
        self.eviction_policy = eviction_policy
        self.capacity = memory_limit
        self._pools: list[TieredPool] = []
        self._on_evict = on_evict
        self._on_page_in = on_page_in
        self._closed = False

    # -- pool lifecycle ----------------------------------------------------------------

    def new_pool(self) -> TieredPool:
        pool = TieredPool(self)
        self._pools.append(pool)
        self.capacity = max(1, self.memory_limit // len(self._pools))
        return pool

    def drop_pool(self, pool: Any) -> None:
        """Forget a pool that was replaced before use (must be empty)."""
        if pool in self._pools and not len(pool):
            self._pools.remove(pool)
            self.capacity = max(1, self.memory_limit // max(1, len(self._pools)))

    # -- coordinator hooks -------------------------------------------------------------

    def on_evict(self, query_id: str, stub: ir.EntangledQuery) -> None:
        if self._on_evict is not None:
            self._on_evict(query_id, stub)

    def on_page_in(self, query_id: str, query: ir.EntangledQuery) -> None:
        if self._on_page_in is not None:
            self._on_page_in(query_id, query)

    # -- cross-pool queries ------------------------------------------------------------

    def is_cold(self, query_id: str) -> bool:
        return any(pool.is_cold(query_id) for pool in self._pools)

    def sync(self) -> None:
        """Durability barrier before a snapshot references cold entries."""
        self.backend.sync()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.backend.close()

    def statistics(self) -> dict[str, Any]:
        """The ``ServiceStats.tiering`` block (numerics sum across nodes)."""
        hot = sum(pool.hot_count() for pool in self._pools)
        cold = sum(pool.cold_count() for pool in self._pools)
        page_ins = sum(pool.page_ins for pool in self._pools)
        page_in_seconds = sum(pool.page_in_seconds for pool in self._pools)
        return {
            "enabled": True,
            "memory_limit": self.memory_limit,
            "eviction_policy": self.eviction_policy,
            "backend": self.backend.describe(),
            "pools": len(self._pools),
            "hot": hot,
            "cold": cold,
            "peak_hot": sum(pool.peak_hot for pool in self._pools),
            "evictions": sum(pool.evictions for pool in self._pools),
            "page_ins": page_ins,
            "page_in_seconds": round(page_in_seconds, 6),
            "avg_page_in_ms": round(1000.0 * page_in_seconds / page_ins, 3)
            if page_ins
            else 0.0,
        }
