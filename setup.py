"""Setup shim.

The build environment of this reproduction has no network access and ships a
setuptools without the ``wheel`` package, so PEP 660 editable installs cannot
build a wheel.  Keeping a classic ``setup.py`` lets ``pip install -e .`` fall
back to the legacy ``setup.py develop`` path, which works offline.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

# The py.typed marker (PEP 561) ships with the package so downstream type
# checkers consume the public API's annotations.
setup(package_data={"repro": ["py.typed"]})
