"""Demo scenario E8: ad-hoc coordination structures.

"For example, it is possible to have a group of three friends, Jerry, Kramer
and Elaine, where Jerry and Kramer coordinate on flight reservations only,
whereas Kramer and Elaine coordinate on both flight and hotel reservations."

This example reproduces exactly that asymmetric structure and shows that the
constraints chain: all three end up on the same flight, but only Kramer and
Elaine share a hotel.

Run with:  python examples/travel_adhoc.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import YoutopiaSystem  # noqa: E402
from repro.apps.travel import (  # noqa: E402
    FriendGraph,
    TravelService,
    TripRequest,
    generate_dataset,
    install_and_load,
)


def main() -> int:
    system = YoutopiaSystem(seed=11)
    install_and_load(system, generate_dataset(num_flights=40, num_hotels=20, seed=11))

    friends = FriendGraph(["Jerry", "Kramer", "Elaine"])
    friends.add_friendship("Jerry", "Kramer")
    friends.add_friendship("Kramer", "Elaine")
    service = TravelService(system, friends=friends)

    print("Ad-hoc coordination: Jerry+Kramer (flight only), Kramer+Elaine (flight and hotel)")

    jerry = service.request_trip(TripRequest(
        user="Jerry", destination="Madrid", flight_partners=("Kramer",),
    ))
    print(f"  Jerry  (flight with Kramer) .............. {jerry.status.value}")

    kramer = service.request_trip(TripRequest(
        user="Kramer", destination="Madrid",
        flight_partners=("Jerry", "Elaine"),
        hotel_partners=("Elaine",), book_hotel=True,
    ))
    print(f"  Kramer (flight with both, hotel with Elaine) {kramer.status.value}")

    elaine = service.request_trip(TripRequest(
        user="Elaine", destination="Madrid",
        flight_partners=("Kramer",), hotel_partners=("Kramer",), book_hotel=True,
    ))
    print(f"  Elaine (flight and hotel with Kramer) ..... {elaine.status.value}")

    flights = dict(system.answers("Reservation"))
    hotels = dict(system.answers("HotelReservation"))

    print("\nOutcome:")
    for user in ("Jerry", "Kramer", "Elaine"):
        print(f"  {user:<7} flight={flights.get(user, '-')} hotel={hotels.get(user, '-')}")

    assert flights["Jerry"] == flights["Kramer"] == flights["Elaine"]
    assert hotels["Kramer"] == hotels["Elaine"]
    assert "Jerry" not in hotels
    print("\nAll three share the flight; only Kramer and Elaine share a hotel — "
          "exactly the ad-hoc structure described in the paper.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
