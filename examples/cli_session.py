"""Demo application #2 (experiment E9): the SQL command-line interface.

Drives the scriptable shell the way a demo presenter would: create the flight
table, submit Kramer's and Jerry's entangled queries directly as SQL, inspect
the pending pool in between, and read the coordinated answers back.

Run with:  python examples/cli_session.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.cli import CommandLine  # noqa: E402

SESSION = [
    "CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT, price REAL)",
    "INSERT INTO Flights VALUES (122, 'Paris', 450.0), (123, 'Paris', 500.0), "
    "(134, 'Paris', 700.0), (136, 'Rome', 300.0)",
    "SELECT * FROM Flights ORDER BY fno",
    ".user Kramer",
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
    ".pending",
    ".user Jerry",
    "SELECT 'Jerry', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
    ".answers Reservation",
    "SELECT r.traveler, f.price FROM Reservation r JOIN Flights f ON r.fno = f.fno",
    ".stats",
]


def main() -> int:
    shell = CommandLine()
    for line in SESSION:
        print(f"youtopia> {line}")
        output = shell.run_line(line)
        if output:
            print(output)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
