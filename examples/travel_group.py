"""Demo scenarios E6/E7: group flight (and hotel) booking.

A group of four friends jointly specifies that they want to travel on the same
flight (and, in the second part, also stay in the same hotel).  Each member
submits an individual entangled query naming the whole group; Youtopia answers
all of them only when the last member's request arrives.

Run with:  python examples/travel_group.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import YoutopiaSystem  # noqa: E402
from repro.apps.travel import (  # noqa: E402
    FriendGraph,
    TravelService,
    generate_dataset,
    install_and_load,
)

GROUP = ["Jerry", "Kramer", "Elaine", "George"]


def main() -> int:
    system = YoutopiaSystem(seed=7)
    install_and_load(system, generate_dataset(num_flights=48, num_hotels=24, seed=7))

    friends = FriendGraph(GROUP)
    for index, left in enumerate(GROUP):
        for right in GROUP[index + 1:]:
            friends.add_friendship(left, right)
    service = TravelService(system, friends=friends)

    # ------------------------------------------------------------------ E6 ----
    print("== Group flight booking (four friends, same flight) ==")
    requests = {}
    for member in GROUP:
        companions = [other for other in GROUP if other != member]
        requests[member] = service.request_group_flight(member, companions, "Athens")
        pending = sum(1 for request in requests.values() if not request.is_answered)
        print(f"  {member:<7} submitted — {pending} request(s) still pending")

    flights = {fno for _traveler, fno in system.answers("Reservation")}
    print(f"All four answered together: shared flight {flights}")
    assert len(flights) == 1

    # ------------------------------------------------------------------ E7 ----
    print("\n== Group flight AND hotel booking (three friends) ==")
    trio = GROUP[:3]
    requests = service.submit_group_flight_hotel(trio, "Berlin")
    for member, request in requests.items():
        confirmation = service.confirmation_for(request)
        print(f"  {member:<7} flight={confirmation.flight.fno} hotel={confirmation.hotel.hid}")
    hotel_choices = {hid for traveler, hid in system.answers("HotelReservation") if traveler in trio}
    assert len(hotel_choices) == 1
    print(f"The trio shares hotel {hotel_choices.pop()} in Berlin.")

    stats = system.statistics()
    print(f"\nCoordination statistics: {stats['groups_matched']} groups matched, "
          f"{stats['queries_answered']} queries answered, "
          f"{stats['structural_nodes']} matcher search nodes explored.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
