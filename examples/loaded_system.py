"""Experiment E10: the demo's scalability claim on a loaded system.

"We also demonstrate the scalability of our coordination algorithm by allowing
our examples to be run on a loaded system, where a large number of entangled
queries are trying to coordinate simultaneously."

This script sweeps the number of simultaneously coordinating pairs, submits
each workload to a fresh system, and prints throughput plus matcher statistics;
it then repeats a single coordination while an increasing number of unrelated
pending queries clutter the pool, showing the effect of the provider index.

Run with:  python examples/loaded_system.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.workloads import (  # noqa: E402
    WorkloadConfig,
    WorkloadGenerator,
    build_loaded_system,
    run_workload,
)


def sweep_pairs() -> None:
    print("== Sweep 1: N pairs coordinating simultaneously ==")
    print(f"{'pairs':>6} {'queries':>8} {'time (s)':>9} {'per-query (ms)':>15} {'search nodes':>13}")
    for num_pairs in (25, 50, 100, 200, 400):
        system, service, _friends = build_loaded_system(
            num_flights=120, num_hotels=40, num_users=4, seed=0
        )
        generator = WorkloadGenerator(service, WorkloadConfig(num_pairs=num_pairs, seed=0))
        result = run_workload(system, generator.generate())
        assert result.all_answered
        per_query = 1000.0 * result.elapsed_seconds / result.submitted
        print(f"{num_pairs:>6} {result.submitted:>8} {result.elapsed_seconds:>9.3f} "
              f"{per_query:>15.3f} {result.statistics['structural_nodes']:>13}")


def sweep_pool_noise() -> None:
    print("\n== Sweep 2: one pair coordinating while unrelated queries wait ==")
    print(f"{'pending noise':>14} {'pair latency (ms)':>18}")
    for noise in (0, 100, 400, 800, 1600):
        system, service, _friends = build_loaded_system(
            num_flights=120, num_hotels=40, num_users=4, seed=1
        )
        generator = WorkloadGenerator(service, WorkloadConfig(seed=1))
        for item in generator.unmatchable_items(noise):
            system.submit_entangled(item.query, owner=item.owner)
        pair = generator.pair_items(1)
        started = time.perf_counter()
        requests = [system.submit_entangled(item.query, owner=item.owner) for item in pair]
        elapsed = time.perf_counter() - started
        assert all(request.is_answered for request in requests)
        print(f"{noise:>14} {1000.0 * elapsed:>18.3f}")


def sweep_group_size() -> None:
    print("\n== Sweep 3: one group of growing size ==")
    print(f"{'group size':>11} {'time (ms)':>10} {'unifications':>13}")
    for group_size in (2, 4, 8, 12, 16):
        system, service, _friends = build_loaded_system(
            num_flights=120, num_hotels=40, num_users=4, seed=2
        )
        generator = WorkloadGenerator(service, WorkloadConfig(seed=2))
        items = generator.group_items(1, group_size)
        result = run_workload(system, items)
        assert result.all_answered
        print(f"{group_size:>11} {1000.0 * result.elapsed_seconds:>10.2f} "
              f"{result.statistics['unification_attempts']:>13}")


def sweep_batch_submission() -> None:
    print("\n== Sweep 4: submit_many batch vs. the loop of submit ==")
    print(f"{'pairs':>6} {'loop attempts':>14} {'batch attempts':>15}")
    for num_pairs in (25, 100, 200):
        loop_system, service, _friends = build_loaded_system(
            num_flights=120, num_hotels=40, num_users=4, seed=3
        )
        generator = WorkloadGenerator(service, WorkloadConfig(num_pairs=num_pairs, seed=3))
        items = generator.generate()
        loop_result = run_workload(loop_system, items, batch=False)

        batch_system, service, _friends = build_loaded_system(
            num_flights=120, num_hotels=40, num_users=4, seed=3
        )
        generator = WorkloadGenerator(service, WorkloadConfig(num_pairs=num_pairs, seed=3))
        items = generator.generate()
        batch_result = run_workload(batch_system, items, batch=True)

        assert loop_result.all_answered and batch_result.all_answered
        print(f"{num_pairs:>6} {loop_result.statistics['match_attempts']:>14} "
              f"{batch_result.statistics['match_attempts']:>15}")


def main() -> int:
    sweep_pairs()
    sweep_pool_noise()
    sweep_group_size()
    sweep_batch_submission()
    print("\nShape check: per-query cost stays roughly flat as the number of pairs grows, "
          "pool noise adds only mild overhead thanks to the provider index, group "
          "cost grows with group size, and batch submission halves the number of match "
          "passes — the scalability behaviour the demo claims.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
