"""Quickstart: the paper's running example (Figure 1), end to end.

Kramer and Jerry each submit an entangled query asking for a flight to Paris,
conditional on the *other* person getting the same flight.  Neither query can
be answered alone; once both are registered, Youtopia answers them jointly and
both receive the same (nondeterministically chosen) flight number.

The walkthrough goes through the transport-agnostic coordination service
(``InProcessService``): typed ``SubmitRequest`` objects in, future-style
handles (``done()`` / ``result(timeout)`` / ``add_done_callback``) out.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import InProcessService, SubmitRequest, SystemConfig  # noqa: E402


def main() -> int:
    service = InProcessService(config=SystemConfig(seed=0))

    # -- the flight database of Figure 1(a) ------------------------------------
    service.execute_script(
        """
        CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT);
        CREATE TABLE Airlines (fno INT PRIMARY KEY, airline TEXT);
        INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), (136, 'Rome');
        INSERT INTO Airlines VALUES (122, 'United'), (123, 'United'),
                                    (134, 'Lufthansa'), (136, 'Alitalia');
        """
    )
    service.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])

    # -- Kramer's entangled query (Section 2.1 of the paper) --------------------
    kramer = service.submit(
        SubmitRequest(
            owner="Kramer",
            sql=(
                "SELECT 'Kramer', fno INTO ANSWER Reservation "
                "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
                "AND ('Jerry', fno) IN ANSWER Reservation "
                "CHOOSE 1"
            ),
        )
    )
    print(f"Kramer's query {kramer.query_id}: {kramer.status.value}  done={kramer.done()}")
    print("  (it cannot be answered alone — it waits for Jerry)")

    # a completion callback instead of poll-waiting
    kramer.add_done_callback(
        lambda handle: print(f"  [callback] {handle.query_id} is now {handle.status.value}")
    )

    # -- Jerry's symmetric query -------------------------------------------------
    jerry = service.submit(
        SubmitRequest(
            owner="Jerry",
            sql=(
                "SELECT 'Jerry', fno INTO ANSWER Reservation "
                "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
                "AND ('Kramer', fno) IN ANSWER Reservation "
                "CHOOSE 1"
            ),
        )
    )
    print(f"Jerry's query  {jerry.query_id}: {jerry.status.value}")
    print(f"Kramer's query {kramer.query_id}: {kramer.status.value}  (answered jointly)")

    # future-style: result() returns the transportable answer envelope
    envelope = kramer.result(timeout=1.0)
    print(f"\nKramer's answer envelope: {dict(envelope.tuples)} (group {list(envelope.group)})")

    # -- the shared answer relation (Figure 1(b)) ---------------------------------
    print("\nReservation answer relation:")
    for traveler, fno in service.answers("Reservation"):
        print(f"  R({traveler!r}, {fno})")

    result = service.query(
        "SELECT r.traveler, r.fno, a.airline "
        "FROM Reservation r JOIN Airlines a ON r.fno = a.fno ORDER BY r.traveler"
    )
    print("\nJoined with the Airlines table (plain SQL over the answer relation):")
    for traveler, fno, airline in result.rows:
        print(f"  {traveler} flies {airline} flight {fno}")

    fnos = {fno for _traveler, fno in service.answers("Reservation")}
    assert len(fnos) == 1 and fnos.pop() in (122, 123, 134)
    print("\nBoth friends are on the same Paris flight — coordination succeeded.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
