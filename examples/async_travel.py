"""Async travel booking: the asyncio request plane, end to end.

The paper frames Youtopia's coordination component as the backend of a
travel web site's middle tier.  An asyncio middle tier wants *awaitable*
coordination: a request handler submits an entangled query and ``await``\\s
the handle — no thread parks while the query sits pending.

This walkthrough runs the whole async stack in one program:

* an :class:`~repro.service.aio.AsyncCoordinationServer` — one event loop
  serving every connection (no thread per socket, no thread per request);
* two :class:`~repro.service.aio.AsyncRemoteService` clients — Kramer's and
  Jerry's sessions, each a single multiplexed TCP connection;
* ``await asyncio.gather(kramer_handle, jerry_handle)`` — both bookings
  resolve the moment the coordinator matches the pair, pushed to each
  client over its connection.

Run with:  python examples/async_travel.py
"""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import SubmitRequest, SystemConfig  # noqa: E402
from repro.service.aio import AsyncCoordinationServer, AsyncRemoteService  # noqa: E402

SETUP = """
CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT);
INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), (136, 'Rome');
"""


def booking_sql(owner: str, partner: str) -> str:
    return (
        f"SELECT '{owner}', fno INTO ANSWER Reservation "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        f"AND ('{partner}', fno) IN ANSWER Reservation CHOOSE 1"
    )


async def main() -> int:
    print("== Async travel booking (single event loop, two clients) ==")

    async with AsyncCoordinationServer(config=SystemConfig(seed=0)) as server:
        host, port = server.address
        print(f"asyncio coordination server listening on {host}:{port}")

        kramer_session = await AsyncRemoteService.connect(host, port)
        jerry_session = await AsyncRemoteService.connect(host, port)

        await kramer_session.execute_script(SETUP)
        await kramer_session.declare_answer_relation(
            "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
        )

        # Kramer books first: his query is pending until Jerry shows up.
        kramer_handle = await kramer_session.submit(
            SubmitRequest(sql=booking_sql("Kramer", "Jerry"), owner="Kramer")
        )
        print(f"Kramer submitted {kramer_handle.query_id}: pending={not kramer_handle.done()}")

        # Jerry books from his own connection; the pair coordinates.
        jerry_handle = await jerry_session.submit(
            SubmitRequest(sql=booking_sql("Jerry", "Kramer"), owner="Jerry")
        )

        # Awaitable handles: both envelopes arrive via server push.
        kramer_env, jerry_env = await asyncio.gather(kramer_handle, jerry_handle)
        (_relation, (_who, kramer_flight)), *_ = kramer_env.all_tuples()
        (_relation, (_who, jerry_flight)), *_ = jerry_env.all_tuples()
        print(
            f"booked together: Kramer -> flight {kramer_flight}, "
            f"Jerry -> flight {jerry_flight} "
            f"(group of {len(kramer_env.group)})"
        )
        assert kramer_flight == jerry_flight

        stats = await kramer_session.stats()
        transport = dict(stats.transport)
        print(
            f"transport: {transport['connections_open']} connections, "
            f"{transport['requests_total']} requests, "
            f"{transport['bytes_out']} bytes pushed+answered"
        )

        await kramer_session.close()
        await jerry_session.close()
    print("server stopped")
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
