"""Two-process travel booking over the network transport.

The paper's framing is a travel web site whose middle tier calls into the
coordination service on behalf of many users.  This example makes the process
split real:

* a **server process** (this script re-invoked with ``--serve``) hosts the
  Youtopia system behind a ``CoordinationServer`` on an ephemeral TCP port;
* the **client process** opens two independent ``RemoteService`` connections
  — Jerry's and Kramer's app sessions — and coordinates a flight booking
  between them, never touching the database in its own address space.

Run with:  python examples/remote_travel.py
"""

from __future__ import annotations

import os
import select
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import ServiceUnavailableError  # noqa: E402
from repro.service import InProcessService, SubmitRequest, SystemConfig  # noqa: E402
from repro.service.remote import CoordinationServer, RemoteService  # noqa: E402

SCHEMA = """
CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT, price INT, seats INT);
INSERT INTO Flights VALUES
    (122, 'Paris', 540, 20), (123, 'Paris', 610, 12),
    (134, 'Paris', 890, 4),  (136, 'Rome', 650, 16);
"""


def booking_sql(traveler: str, companion: str, dest: str, max_price: int) -> str:
    """An entangled booking: same flight as ``companion``, under a price cap."""
    return (
        f"SELECT '{traveler}', fno INTO ANSWER Reservation "
        f"WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}' "
        f"AND price < {max_price}) "
        f"AND ('{companion}', fno) IN ANSWER Reservation CHOOSE 1"
    )


def serve() -> int:
    """The server process: load the schema, listen, print the port."""
    service = InProcessService(config=SystemConfig(seed=42))
    service.execute_script(SCHEMA)
    service.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    server = CoordinationServer(service=service, port=0, close_service=True)
    _host, port = server.start()
    print(f"PORT {port}", flush=True)
    server.wait_stopped()
    return 0


def read_port(process: subprocess.Popen, timeout: float = 30.0) -> int:
    """Read the ephemeral port the server chose (``PORT <n>`` on stdout).

    The server binds port 0 and reports the kernel-assigned port back, so the
    two processes can never collide on a hard-coded port.  Non-matching lines
    are skipped; a server that exits or stays silent past ``timeout`` raises
    with its diagnostics instead of blocking forever.  The pipe is read with
    ``select`` + ``os.read`` (POSIX) and line-split locally — mixing
    ``select`` with a *buffered* ``readline`` would hide lines already
    sitting in the stdio buffer and stall on a pipe with no fresh bytes.
    """
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    fd = process.stdout.fileno()
    buffer = ""
    while True:
        while "\n" in buffer:
            line, buffer = buffer.split("\n", 1)
            parts = line.split()
            if len(parts) == 2 and parts[0] == "PORT" and parts[1].isdigit():
                return int(parts[1])
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise RuntimeError(f"server did not report a port within {timeout}s")
        ready, _, _ = select.select([fd], [], [], remaining)
        if not ready:
            raise RuntimeError(f"server did not report a port within {timeout}s")
        chunk = os.read(fd, 4096)
        if not chunk:
            raise RuntimeError(
                f"server exited (code {process.poll()}) before reporting its port"
            )
        buffer += chunk.decode("utf-8", errors="replace")


def connect_with_retry(
    host: str, port: int, attempts: int = 10, delay: float = 0.2
) -> RemoteService:
    """Connect, retrying while the server's accept loop finishes starting."""
    last_error: Exception = ServiceUnavailableError("no connection attempted")
    for attempt in range(attempts):
        try:
            return RemoteService.connect(host, port)
        except ServiceUnavailableError as exc:
            last_error = exc
            time.sleep(delay * (attempt + 1))
    raise last_error


def main() -> int:
    server_process = subprocess.Popen(
        [sys.executable, __file__, "--serve"],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        port = read_port(server_process)
        print("== Two-process travel booking ==")
        print(f"server process (pid {server_process.pid}) listening on 127.0.0.1:{port}")

        # Jerry and Kramer each hold their own connection, as two browser
        # sessions against the travel site's middle tier would.
        jerry_session = connect_with_retry("127.0.0.1", port)
        kramer_session = connect_with_retry("127.0.0.1", port)

        jerry = jerry_session.submit(
            SubmitRequest(sql=booking_sql("Jerry", "Kramer", "Paris", 700), owner="Jerry")
        )
        print(f"Jerry submits his request ............ {jerry.status.value}")

        kramer = kramer_session.submit(
            SubmitRequest(sql=booking_sql("Kramer", "Jerry", "Paris", 900), owner="Kramer")
        )
        print(f"Kramer submits the matching request .. {kramer.status.value}")

        # Jerry's handle resolves via server push — no polling round trips.
        envelope = jerry.result(timeout=5.0)
        (_relation, (traveler, fno)), *_ = envelope.all_tuples()
        print(f"{traveler} is booked on flight {fno}, coordinated across "
              f"{len(envelope.group)} queries in 2 processes")

        print("\nReservation relation as Kramer's session sees it:")
        for traveler, fno in sorted(kramer_session.answers("Reservation")):
            print(f"  {traveler:<7} flight={fno}")

        stats = jerry_session.stats()
        print(f"\nserver statistics: groups_matched={stats['groups_matched']}, "
              f"pending={stats.pending}")

        jerry_session.shutdown_server()
        server_process.wait(timeout=10)
        print("server stopped")
        return 0
    finally:
        if server_process.poll() is None:
            server_process.terminate()
            server_process.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(serve() if "--serve" in sys.argv[1:] else main())
