"""Demo application #3 (experiments E2/E9): the administrative interface.

Shows the "special mode that enables visual inspection of the state of the
system": the pending entangled queries and their internal representation, the
potential-match graph the matching algorithm works on, answer relations,
coordination statistics and the event log — before and after a coordination
completes.

Run with:  python examples/admin_walkthrough.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import YoutopiaSystem  # noqa: E402
from repro.apps.admin import AdminInterface  # noqa: E402
from repro.apps.travel import generate_dataset, install_and_load  # noqa: E402

KRAMER_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)
JERRY_SQL = (
    "SELECT 'Jerry', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1"
)
ELAINE_SQL = (
    "SELECT 'Elaine', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Rome') "
    "AND ('George', fno) IN ANSWER Reservation CHOOSE 1"
)


def main() -> int:
    system = YoutopiaSystem(seed=3)
    install_and_load(system, generate_dataset(num_flights=24, num_hotels=8, seed=3))
    admin = AdminInterface(system)

    kramer = system.submit_entangled(KRAMER_SQL, owner="Kramer")
    system.submit_entangled(ELAINE_SQL, owner="Elaine")

    print("== Internal representation of Kramer's pending query ==")
    print(admin.describe_query(kramer.query_id))

    print("\n== Potential-match graph over the pending pool ==")
    print(admin.match_graph_text())
    print("(Kramer and Elaine cannot provide for each other: different partners)")

    print("\n== EXPLAIN of the domain subquery the matcher grounds against the DB ==")
    print(admin.explain("SELECT fno FROM Flights WHERE dest = 'Paris'"))

    system.submit_entangled(JERRY_SQL, owner="Jerry")

    print("\n== Answer relation after Jerry's query arrives ==")
    print(admin.answer_relation_text("Reservation"))

    print("\n== Coordination event log (most recent events) ==")
    print(admin.event_log_text(limit=8))

    print("\n== Full state dump ==")
    print(admin.render_state())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
