"""Demo scenarios E3/E4: coordinating a trip with one friend.

Walks through the first two scenarios of Section 3.1 using the travel
application's middle tier (the same code path the demo's web front end used):

1. "Book a flight with a friend" — Jerry picks Kramer from his friend list and
   asks for a seat on the same flight; the alternate browse-then-book path is
   shown as well.
2. "Book a flight and a hotel with a friend" — a single entangled query per
   user constrains both reservations.

Run with:  python examples/travel_pair.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import YoutopiaSystem  # noqa: E402
from repro.apps.travel import (  # noqa: E402
    FriendGraph,
    Mailbox,
    TravelService,
    generate_dataset,
    install_and_load,
)


def main() -> int:
    system = YoutopiaSystem(seed=42)
    install_and_load(system, generate_dataset(num_flights=40, num_hotels=20, seed=42))

    friends = FriendGraph()
    friends.add_friendship("Jerry", "Kramer")
    friends.add_friendship("Jerry", "Elaine")
    mailbox = Mailbox(system)
    service = TravelService(system, friends=friends, mailbox=mailbox)

    # ------------------------------------------------------------------ E3 ----
    print("== Book a flight with a friend ==")
    print(f"Jerry's friends: {service.friends_of('Jerry')}")
    jerry = service.request_flight_with_friend("Jerry", "Kramer", "Paris", max_price=900)
    print(f"Jerry submits his request ............ {jerry.status.value}")
    kramer = service.request_flight_with_friend("Kramer", "Jerry", "Paris")
    print(f"Kramer submits the matching request .. {kramer.status.value}")

    confirmation = service.confirmation_for(jerry)
    print(f"Jerry is booked on flight {confirmation.flight.fno} "
          f"(coordinated with {', '.join(confirmation.coordinated_with)})")
    for note in mailbox.messages_for("Jerry"):
        print(f"  [message to Jerry] {note.subject}")

    # alternate path: browse friends' bookings, then book directly (Figure 4)
    print("\n== Alternate path: browse friends' existing bookings ==")
    listing = service.browse_flights_with_friends("Elaine", "Paris")
    with_friends = [(flight, names) for flight, names in listing if names]
    for flight, names in with_friends[:3]:
        print(f"  flight {flight.fno} to {flight.dest} at {flight.price:.0f}: friends {names}")
    if with_friends:
        chosen = with_friends[0][0]
        service.friends.add_friendship("Elaine", "Kramer")
        service.book_flight("Elaine", chosen.fno)
        print(f"Elaine books flight {chosen.fno} directly; "
              f"seats left: {service.flight(chosen.fno).seats}")

    # ------------------------------------------------------------------ E4 ----
    print("\n== Book a flight and a hotel with a friend ==")
    jerry2 = service.request_flight_and_hotel_with_friend("Jerry", "Elaine", "Rome")
    print(f"Jerry's combined request ............. {jerry2.status.value}")
    elaine2 = service.request_flight_and_hotel_with_friend("Elaine", "Jerry", "Rome")
    print(f"Elaine's combined request ............ {elaine2.status.value}")
    confirmation = service.confirmation_for(jerry2)
    print(f"Jerry: flight {confirmation.flight.fno}, hotel {confirmation.hotel.hid}")
    confirmation = service.confirmation_for(elaine2)
    print(f"Elaine: flight {confirmation.flight.fno}, hotel {confirmation.hotel.hid}")

    print("\nFinal account view:")
    for user in ("Jerry", "Kramer", "Elaine"):
        bookings = service.bookings_of(user)
        flight = bookings.flight.fno if bookings.flight else "-"
        hotel = bookings.hotel.hid if bookings.hotel else "-"
        print(f"  {user:<7} flight={flight} hotel={hotel}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
