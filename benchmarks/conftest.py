"""Shared helpers for the benchmark harness.

Every benchmark corresponds to an experiment id in DESIGN.md / EXPERIMENTS.md
(E1, E3-E8, E10-E12).  The helpers here build fresh systems and workloads so
each measured round starts from a clean pending pool.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.system import YoutopiaSystem  # noqa: E402
from repro.workloads import (  # noqa: E402
    WorkloadConfig,
    WorkloadGenerator,
    build_loaded_system,
)

KRAMER_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)
JERRY_SQL = (
    "SELECT 'Jerry', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1"
)


def figure1_system(seed: int = 0) -> YoutopiaSystem:
    """The four-flight database of Figure 1(a)."""
    system = YoutopiaSystem(seed=seed)
    system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    system.execute(
        "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), (136, 'Rome')"
    )
    system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return system


def pair_workload(num_pairs: int, seed: int = 0, num_unmatchable: int = 0, **system_kwargs):
    """A loaded system plus a generated pair workload, ready to submit."""
    system, service, _friends = build_loaded_system(
        num_flights=120, num_hotels=40, num_users=4, seed=seed, **system_kwargs
    )
    generator = WorkloadGenerator(
        service,
        WorkloadConfig(
            num_pairs=num_pairs,
            num_unmatchable=num_unmatchable,
            shuffle_arrivals=True,
            seed=seed,
        ),
    )
    return system, generator.generate()


def group_workload(num_groups: int, group_size: int, seed: int = 0, **system_kwargs):
    system, service, _friends = build_loaded_system(
        num_flights=120, num_hotels=40, num_users=4, seed=seed, **system_kwargs
    )
    generator = WorkloadGenerator(service, WorkloadConfig(seed=seed))
    return system, generator.group_items(num_groups, group_size)


@pytest.fixture
def report(request, capsys):
    """Print a labelled result line that survives pytest's output capture.

    Benchmarks use this to emit the 'table row' each experiment reports
    (throughput, pool sizes, match counts) alongside pytest-benchmark's timing
    table, so EXPERIMENTS.md can be regenerated from the benchmark output.
    """

    def _report(**fields):
        with capsys.disabled():
            rendered = ", ".join(f"{key}={value}" for key, value in fields.items())
            print(f"\n[{request.node.name}] {rendered}")

    return _report
