"""E1 — Figure 1: mutual constraint satisfaction between two entangled queries.

Measures the end-to-end cost of the paper's worked example: compiling,
registering and jointly answering Kramer's and Jerry's queries against the
four-flight database of Figure 1(a).  The paper reports no absolute numbers;
the reproduced "shape" is that the pair coordinates in well under a
millisecond-to-few-milliseconds on commodity hardware, i.e. interactive.

Set ``BENCH_FIGURE1_JSON=/path/out.json`` to dump the timings for the
bench-trajectory artifact.
"""

from __future__ import annotations

import json
import os

from conftest import JERRY_SQL, KRAMER_SQL, figure1_system

_RESULTS: dict = {"experiment": "bench_figure1"}


def maybe_dump_json() -> None:
    path = os.environ.get("BENCH_FIGURE1_JSON")
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(_RESULTS, handle, indent=2, sort_keys=True)


def benchmark_mean_ms(benchmark) -> float:
    return 1000.0 * benchmark.stats.stats.mean


def run_pair(system):
    kramer = system.submit_entangled(KRAMER_SQL, owner="Kramer")
    jerry = system.submit_entangled(JERRY_SQL, owner="Jerry")
    assert kramer.is_answered and jerry.is_answered
    return system.answers("Reservation")


def test_figure1_pair_coordination(benchmark, report):
    """Submit and jointly answer the Kramer/Jerry pair (fresh system per round)."""

    def setup():
        return (figure1_system(),), {}

    reservations = benchmark.pedantic(run_pair, setup=setup, rounds=30, iterations=1)
    assert len(reservations) == 2
    chosen = {fno for _traveler, fno in reservations}
    assert len(chosen) == 1 and chosen.pop() in (122, 123, 134)
    _RESULTS["pair_coordination_ms"] = round(benchmark_mean_ms(benchmark), 3)
    maybe_dump_json()
    report(
        reservation_tuples=2,
        same_flight=True,
        flights_considered=3,
    )


def test_figure1_compile_only(benchmark, report):
    """Cost of the query compiler alone (SQL text → internal representation)."""
    from repro.core.compiler import compile_entangled

    query = benchmark(lambda: compile_entangled(KRAMER_SQL, owner="Kramer"))
    assert query.heads[0].relation == "Reservation"
    _RESULTS["compile_ms"] = round(benchmark_mean_ms(benchmark), 3)
    maybe_dump_json()
    report(heads=len(query.heads), domains=len(query.domains), constraints=len(query.answer_atoms))


def test_figure1_first_query_waits(benchmark, report):
    """Registering a query whose partner has not arrived (it must stay pending)."""

    def register(system):
        request = system.submit_entangled(KRAMER_SQL, owner="Kramer")
        assert not request.is_answered
        return request

    def setup():
        return (figure1_system(),), {}

    benchmark.pedantic(register, setup=setup, rounds=30, iterations=1)
    _RESULTS["first_query_register_ms"] = round(benchmark_mean_ms(benchmark), 3)
    maybe_dump_json()
    report(outcome="pending", pool_size_after=1)
