"""E10 — scalability of the coordination algorithm on a loaded system.

"We also demonstrate the scalability of our coordination algorithm by allowing
our examples to be run on a loaded system, where a large number of entangled
queries are trying to coordinate simultaneously."

Three sweeps:

* total submission time for N coordinating pairs (N up to several hundred) —
  expected shape: near-linear in N for the unification-based matcher;
* per-arrival match cost when the pool already contains many unmatchable
  pending queries (pool noise) — expected shape: roughly flat thanks to the
  (relation, constant-position) provider index;
* group-size sweep — cost grows with the size of the coordination group.

Set ``BENCH_SCALABILITY_JSON=/path/out.json`` to dump the sweep numbers for
the bench-trajectory artifact (written incrementally: the dump after each
test carries every sweep point measured so far in the session).
"""

from __future__ import annotations

import json
import os

import pytest

from conftest import group_workload, pair_workload
from repro.workloads import run_workload

_RESULTS: dict = {"experiment": "bench_scalability"}


def maybe_dump_json() -> None:
    path = os.environ.get("BENCH_SCALABILITY_JSON")
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(_RESULTS, handle, indent=2, sort_keys=True)


def benchmark_mean_ms(benchmark) -> float:
    return 1000.0 * benchmark.stats.stats.mean


@pytest.mark.parametrize("num_pairs", [25, 50, 100, 200])
def test_throughput_vs_number_of_pairs(benchmark, report, num_pairs):
    """Total time to submit and coordinate N independent pairs."""

    def setup():
        return pair_workload(num_pairs, seed=1), {}

    def run(system, items):
        result = run_workload(system, items)
        assert result.answered == 2 * num_pairs
        return result

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    per_query_ms = 1000.0 * result.elapsed_seconds / result.submitted
    _RESULTS[f"pairs_{num_pairs}_per_query_ms"] = round(per_query_ms, 3)
    maybe_dump_json()
    report(
        pairs=num_pairs,
        queries=result.submitted,
        per_query_ms=round(per_query_ms, 3),
        structural_nodes=result.statistics["structural_nodes"],
        domain_queries=result.statistics["domain_queries"],
    )


@pytest.mark.parametrize("noise", [0, 100, 400, 800])
def test_arrival_cost_with_pool_noise(benchmark, report, noise):
    """Cost of coordinating one fresh pair while `noise` unrelated queries wait."""

    def setup():
        system, items = pair_workload(1, seed=2, num_unmatchable=noise)
        noise_items = [item for item in items if not item.expected_group]
        pair_items = [item for item in items if item.expected_group]
        for item in noise_items:
            system.submit_entangled(item.query, owner=item.owner)
        assert system.coordinator.pending_count() == noise
        return (system, pair_items), {}

    def run(system, pair_items):
        requests = [
            system.submit_entangled(item.query, owner=item.owner) for item in pair_items
        ]
        assert all(request.is_answered for request in requests)
        return system

    system = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    _RESULTS[f"noise_{noise}_arrival_ms"] = round(benchmark_mean_ms(benchmark), 3)
    maybe_dump_json()
    report(
        pool_noise=noise,
        pending_after=system.coordinator.pending_count(),
        provider_index_size=system.coordinator.provider_index_size(),
    )


@pytest.mark.parametrize("group_size", [2, 4, 8, 12])
def test_group_size_sweep(benchmark, report, group_size):
    """Cost of coordinating a single group as the group grows."""

    def setup():
        return group_workload(1, group_size, seed=3), {}

    def run(system, items):
        result = run_workload(system, items)
        assert result.answered == group_size
        return result

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    _RESULTS[f"group_{group_size}_ms"] = round(benchmark_mean_ms(benchmark), 3)
    maybe_dump_json()
    report(
        group_size=group_size,
        structural_nodes=result.statistics["structural_nodes"],
        unification_attempts=result.statistics["unification_attempts"],
    )


@pytest.mark.parametrize("num_pairs", [50, 200])
def test_mixed_load_with_hotel_coordination(benchmark, report, num_pairs):
    """Pairs where half also coordinate the hotel (two answer relations)."""
    from repro.workloads import WorkloadConfig, WorkloadGenerator, build_loaded_system

    def setup():
        system, service, _friends = build_loaded_system(
            num_flights=120, num_hotels=40, num_users=4, seed=4
        )
        generator = WorkloadGenerator(
            service,
            WorkloadConfig(num_pairs=num_pairs, flight_and_hotel_fraction=0.5, seed=4),
        )
        return (system, generator.generate()), {}

    def run(system, items):
        result = run_workload(system, items)
        assert result.all_answered
        return result

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    _RESULTS[f"mixed_{num_pairs}_ms"] = round(benchmark_mean_ms(benchmark), 3)
    maybe_dump_json()
    report(pairs=num_pairs, queries=result.submitted,
           groups=result.statistics["groups_matched"])
