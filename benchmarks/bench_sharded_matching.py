"""E14 — sharded, event-driven matching vs. the single-shard worker baseline.

The workload models a live system at steady state: four *disjoint* relation
families (each answer relation hashes to its own shard at ``shard_count=4``),
a pool of grounding-fail "noise" pairs that permanently occupy the pending
pool (they unify structurally but their flight domains are disjoint, so every
retry re-runs real grounding work), and a stream of matchable pairs
interleaved with base-data INSERTs.  ``auto_retry_on_data_change`` is on, so
every arrival after a data change pays a retry sweep — the dominant cost of
coordination under churn.

With one worker (one shard) every sweep rescans the *entire* pending pool;
with four workers (four shards) an arrival sweeps only its own shard's
quarter.  The sweep scope — not thread parallelism, which the GIL mutes — is
what the sharding buys: match attempts drop ~4×, and wall-clock throughput
follows.  Each submission is drained before the next so event coalescing
cannot mask the per-arrival cost, which also makes the attempt counters
deterministic.

Acceptance (asserted below): with 4 workers vs 1 on the 4-relation disjoint
workload, match attempts drop by ≥2× and measured match throughput
(answered queries per second of matching) improves by ≥2×.

Set ``BENCH_SHARDED_JSON=/path/out.json`` to dump the raw numbers (the CI
stress job uploads this as an artifact).
"""

from __future__ import annotations

import json
import os
import time

from repro.core.config import SystemConfig
from repro.core.coordinator import QueryStatus
from repro.core.sharding import shard_for_relation
from repro.core.system import YoutopiaSystem

SHARD_COUNT = 4
NOISE_PAIRS_PER_RELATION = 12
MATCH_PAIRS_PER_RELATION = 8


def disjoint_relations(shard_count: int) -> list[str]:
    """Pick one answer-relation name per shard (stable CRC32 routing)."""
    chosen: dict[int, str] = {}
    index = 0
    while len(chosen) < shard_count:
        name = f"Res{index}"
        chosen.setdefault(shard_for_relation(name, shard_count), name)
        index += 1
    return [chosen[shard] for shard in range(shard_count)]


RELATIONS = disjoint_relations(SHARD_COUNT)


def entangled(user: str, partner: str, relation: str, dest: str) -> str:
    return (
        f"SELECT '{user}', fno INTO ANSWER {relation} "
        f"WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') "
        f"AND ('{partner}', fno) IN ANSWER {relation} CHOOSE 1"
    )


def build_system(match_workers: int) -> YoutopiaSystem:
    # idle_sweep_interval=0: the liveness backstop would add machine-speed-
    # dependent sweeps; this experiment measures the arrival-driven steady
    # state, where every shard sees regular traffic anyway.
    config = SystemConfig(
        seed=0,
        match_workers=match_workers,
        auto_retry_on_data_change=True,
        idle_sweep_interval=0.0,
    )
    system = YoutopiaSystem(config=config)
    system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    rows = [f"({fno}, 'Paris')" for fno in range(1, 41)]
    rows += [f"({fno}, 'Rome')" for fno in range(41, 61)]
    system.execute("INSERT INTO Flights VALUES " + ", ".join(rows))
    for relation in RELATIONS:
        system.declare_answer_relation(relation, ["traveler", "fno"], ["TEXT", "INTEGER"])
    return system


def run_steady_state_workload(match_workers: int) -> dict[str, float]:
    """Noise + (INSERT, pair, drain) stream; returns counters and timings."""
    system = build_system(match_workers)
    try:
        # -- the permanently-pending noise pool (grounding-fail pairs) ------
        noise = []
        for relation in RELATIONS:
            for index in range(NOISE_PAIRS_PER_RELATION):
                left = f"noise-{relation}-{index}a"
                right = f"noise-{relation}-{index}b"
                noise.append(entangled(left, right, relation, "Paris"))
                noise.append(entangled(right, left, relation, "Rome"))
        system.submit_many(noise)
        assert system.drain(timeout=60.0)
        baseline = system.statistics()

        # -- the measured phase: data churn + matchable arrivals ------------
        started = time.perf_counter()
        next_fno = 1000
        requests = []
        for index in range(MATCH_PAIRS_PER_RELATION):
            for relation in RELATIONS:
                system.execute(f"INSERT INTO Flights VALUES ({next_fno}, 'Oslo')")
                next_fno += 1
                left = f"m-{relation}-{index}a"
                right = f"m-{relation}-{index}b"
                requests.append(
                    system.submit_entangled(entangled(left, right, relation, "Paris"))
                )
                assert system.drain(timeout=60.0)
                requests.append(
                    system.submit_entangled(entangled(right, left, relation, "Paris"))
                )
                assert system.drain(timeout=60.0)
        elapsed = time.perf_counter() - started

        answered = sum(1 for request in requests if request.status is QueryStatus.ANSWERED)
        assert answered == len(requests), (
            f"lost answers: {answered}/{len(requests)} with {match_workers} workers"
        )
        assert not system.coordinator.worker_pool.errors
        stats = system.statistics()
        return {
            "match_workers": match_workers,
            "shards": system.config.resolved_shard_count,
            "answered": answered,
            "pending_noise": system.coordinator.pending_count(),
            "elapsed_seconds": elapsed,
            "throughput_qps": answered / elapsed,
            "match_attempts": stats["match_attempts"] - baseline["match_attempts"],
            "retry_sweeps": stats["retry_sweeps"] - baseline["retry_sweeps"],
            "match_events": stats["match_events"] - baseline["match_events"],
        }
    finally:
        system.close()


def maybe_dump_json(payload: dict) -> None:
    path = os.environ.get("BENCH_SHARDED_JSON")
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


def test_four_workers_vs_one_on_disjoint_relations(report):
    """The acceptance experiment: ≥2× attempts reduction and ≥2× throughput."""
    single = run_steady_state_workload(match_workers=1)
    sharded = run_steady_state_workload(match_workers=4)

    assert single["answered"] == sharded["answered"] == 2 * MATCH_PAIRS_PER_RELATION * len(
        RELATIONS
    )
    # both configurations keep the same noise pool pending throughout
    assert single["pending_noise"] == sharded["pending_noise"]

    attempts_ratio = single["match_attempts"] / max(sharded["match_attempts"], 1)
    throughput_ratio = sharded["throughput_qps"] / single["throughput_qps"]

    # sweep scope: the single shard rescans the whole pool per dirty arrival,
    # the four shards only their quarter — deterministic, so assert hard
    assert attempts_ratio >= 2.0, f"attempts ratio only {attempts_ratio:.2f}"
    # wall-clock follows the attempt count; keep a margin for timer noise
    assert throughput_ratio >= 2.0, f"throughput ratio only {throughput_ratio:.2f}"

    payload = {
        "experiment": "bench_sharded_matching",
        "workload": {
            "relations": RELATIONS,
            "noise_pairs_per_relation": NOISE_PAIRS_PER_RELATION,
            "match_pairs_per_relation": MATCH_PAIRS_PER_RELATION,
        },
        "single_worker": single,
        "four_workers": sharded,
        "attempts_ratio": attempts_ratio,
        "throughput_ratio": throughput_ratio,
    }
    maybe_dump_json(payload)
    report(
        workers_1_attempts=single["match_attempts"],
        workers_4_attempts=sharded["match_attempts"],
        attempts_ratio=round(attempts_ratio, 2),
        workers_1_qps=round(single["throughput_qps"], 1),
        workers_4_qps=round(sharded["throughput_qps"], 1),
        throughput_ratio=round(throughput_ratio, 2),
        sweeps_1=single["retry_sweeps"],
        sweeps_4=sharded["retry_sweeps"],
    )


def test_submission_is_non_blocking_under_worker_matching(report):
    """Event-driven submits return before matching: arrival cost stays flat.

    Compares the inline coordinator (match pass inside ``submit``) with the
    worker-pool coordinator (register + enqueue) on the same noisy pool: the
    slowest single submission must be far cheaper when matching is deferred.
    """
    latencies: dict[str, float] = {}
    for label, workers in (("inline", 0), ("workers", 2)):
        system = build_system(match_workers=workers)
        try:
            noise = []
            for relation in RELATIONS:
                for index in range(NOISE_PAIRS_PER_RELATION):
                    left = f"noise-{relation}-{index}a"
                    right = f"noise-{relation}-{index}b"
                    noise.append(entangled(left, right, relation, "Paris"))
                    noise.append(entangled(right, left, relation, "Rome"))
            system.submit_many(noise)
            assert system.drain(timeout=60.0)
            system.execute("INSERT INTO Flights VALUES (5000, 'Oslo')")

            worst = 0.0
            for index in range(8):
                relation = RELATIONS[index % len(RELATIONS)]
                started = time.perf_counter()
                system.submit_entangled(
                    entangled(f"lat-{index}", f"ghost-{index}", relation, "Paris")
                )
                worst = max(worst, time.perf_counter() - started)
            latencies[label] = worst
            assert system.drain(timeout=60.0)
        finally:
            system.close()

    # the inline path pays the dirty sweep inside submit; the event-driven
    # path only registers and enqueues
    assert latencies["workers"] < latencies["inline"]
    report(
        inline_worst_ms=round(latencies["inline"] * 1e3, 2),
        workers_worst_ms=round(latencies["workers"] * 1e3, 2),
    )
