"""E11 — the unification-based matcher vs. the exhaustive baseline evaluator.

The baseline implements the declarative semantics directly (enumerate subsets
of the pool x valuations); the matcher is the coordination algorithm the demo
paper relies on.  Expected shape: for small pools both succeed and the matcher
is already faster; as the pool grows the baseline's cost explodes
combinatorially while the matcher stays near-flat.  This is the reason the
companion paper's matching algorithm exists, and it is the comparison this
benchmark regenerates.
"""

from __future__ import annotations

import random

import pytest

from repro.core.baseline import ExhaustiveEvaluator
from repro.core.matching import Matcher, ProviderIndex
from repro.core.system import YoutopiaSystem
from repro.workloads import WorkloadConfig, WorkloadGenerator, build_loaded_system


def build_pool(num_pairs: int, seed: int = 0):
    """A pool of pairwise requests, with the *last* arrival left out as trigger."""
    _system, service, _friends = build_loaded_system(
        num_flights=60, num_hotels=20, num_users=4, seed=seed
    )
    generator = WorkloadGenerator(service, WorkloadConfig(seed=seed))
    items = generator.pair_items(num_pairs)
    engine = service.system.engine
    queries = [item.query for item in items]
    trigger = queries[-1]
    pool = {query.query_id: query for query in queries}
    index = ProviderIndex()
    for query in pool.values():
        index.add_query(query)
    return engine, trigger, pool, index


@pytest.mark.parametrize("num_pairs", [1, 2, 4, 8, 16])
def test_unification_matcher(benchmark, report, num_pairs):
    engine, trigger, pool, index = build_pool(num_pairs)
    matcher = Matcher(engine, rng=random.Random(0))

    group = benchmark(lambda: matcher.find_group(trigger, pool, index))
    assert group is not None and len(group.queries) == 2
    report(
        algorithm="unification_matcher",
        pool_size=len(pool),
        structural_nodes=group.statistics.structural_nodes,
        candidate_providers=group.statistics.candidate_providers,
    )


@pytest.mark.parametrize("num_pairs", [1, 2, 4, 8, 16])
def test_exhaustive_baseline(benchmark, report, num_pairs):
    engine, trigger, pool, index = build_pool(num_pairs)
    del index
    baseline = ExhaustiveEvaluator(engine, rng=random.Random(0), max_group_size=2)

    group = benchmark(lambda: baseline.find_group(trigger, pool))
    assert group is not None and len(group.queries) == 2
    report(
        algorithm="exhaustive_baseline",
        pool_size=len(pool),
        subsets_tried=group.statistics.structural_nodes,
        groundings_tried=group.statistics.grounding_attempts,
    )


@pytest.mark.parametrize("use_baseline", [False, True], ids=["matcher", "baseline"])
def test_end_to_end_system_comparison(benchmark, report, use_baseline):
    """The same 6-pair workload through a full system, switching the algorithm."""
    from repro.workloads import run_workload

    def setup():
        system, service, _friends = build_loaded_system(
            num_flights=60, num_hotels=20, num_users=4, seed=1,
            use_exhaustive_baseline=use_baseline,
        )
        generator = WorkloadGenerator(service, WorkloadConfig(num_pairs=6, seed=1))
        return (system, generator.generate()), {}

    def run(system, items):
        result = run_workload(system, items)
        assert result.all_answered
        return result

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    report(
        algorithm="exhaustive_baseline" if use_baseline else "unification_matcher",
        queries=result.submitted,
        groups=result.statistics["groups_matched"],
        grounding_attempts=result.statistics["grounding_attempts"],
    )
