"""E11 — the unification-based matcher vs. the exhaustive baseline evaluator.

The baseline implements the declarative semantics directly (enumerate subsets
of the pool x valuations); the matcher is the coordination algorithm the demo
paper relies on.  Expected shape: for small pools both succeed and the matcher
is already faster; as the pool grows the baseline's cost explodes
combinatorially while the matcher stays near-flat.  This is the reason the
companion paper's matching algorithm exists, and it is the comparison this
benchmark regenerates.
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest

from repro.core.baseline import ExhaustiveEvaluator
from repro.core.config import SystemConfig
from repro.core.matching import Matcher, ProviderIndex
from repro.core.system import YoutopiaSystem
from repro.workloads import WorkloadConfig, WorkloadGenerator, build_loaded_system


def build_pool(num_pairs: int, seed: int = 0):
    """A pool of pairwise requests, with the *last* arrival left out as trigger."""
    _system, service, _friends = build_loaded_system(
        num_flights=60, num_hotels=20, num_users=4, seed=seed
    )
    generator = WorkloadGenerator(service, WorkloadConfig(seed=seed))
    items = generator.pair_items(num_pairs)
    engine = service.system.engine
    queries = [item.query for item in items]
    trigger = queries[-1]
    pool = {query.query_id: query for query in queries}
    index = ProviderIndex()
    for query in pool.values():
        index.add_query(query)
    return engine, trigger, pool, index


@pytest.mark.parametrize("num_pairs", [1, 2, 4, 8, 16])
def test_unification_matcher(benchmark, report, num_pairs):
    engine, trigger, pool, index = build_pool(num_pairs)
    matcher = Matcher(engine, rng=random.Random(0))

    group = benchmark(lambda: matcher.find_group(trigger, pool, index))
    assert group is not None and len(group.queries) == 2
    report(
        algorithm="unification_matcher",
        pool_size=len(pool),
        structural_nodes=group.statistics.structural_nodes,
        candidate_providers=group.statistics.candidate_providers,
    )


@pytest.mark.parametrize("num_pairs", [1, 2, 4, 8, 16])
def test_exhaustive_baseline(benchmark, report, num_pairs):
    engine, trigger, pool, index = build_pool(num_pairs)
    del index
    baseline = ExhaustiveEvaluator(engine, rng=random.Random(0), max_group_size=2)

    group = benchmark(lambda: baseline.find_group(trigger, pool))
    assert group is not None and len(group.queries) == 2
    report(
        algorithm="exhaustive_baseline",
        pool_size=len(pool),
        subsets_tried=group.statistics.structural_nodes,
        groundings_tried=group.statistics.grounding_attempts,
    )


@pytest.mark.parametrize("use_baseline", [False, True], ids=["matcher", "baseline"])
def test_end_to_end_system_comparison(benchmark, report, use_baseline):
    """The same 6-pair workload through a full system, switching the algorithm."""
    from repro.workloads import run_workload

    def setup():
        system, service, _friends = build_loaded_system(
            num_flights=60, num_hotels=20, num_users=4, seed=1,
            use_exhaustive_baseline=use_baseline,
        )
        generator = WorkloadGenerator(service, WorkloadConfig(num_pairs=6, seed=1))
        return (system, generator.generate()), {}

    def run(system, items):
        result = run_workload(system, items)
        assert result.all_answered
        return result

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    report(
        algorithm="exhaustive_baseline" if use_baseline else "unification_matcher",
        queries=result.submitted,
        groups=result.statistics["groups_matched"],
        grounding_attempts=result.statistics["grounding_attempts"],
    )


# ---------------------------------------------------------------------------
# Policy overhead — bounded candidate enumeration vs. the first-match default
# ---------------------------------------------------------------------------
#
# The policy layer turns the single-group search into bounded enumeration
# (``policy_candidate_limit`` groups) plus an argmin over policy keys.  The
# default ``first_match`` policy must short-circuit back to the classic
# search: its throughput on a standing-pool workload is gated at >= 0.8x of
# a control run that bypasses the policy layer entirely.  The enumerating
# policies (priority / fairness) pay for the extra groups they inspect; their
# ratios are reported (and dumped to ``BENCH_MATCHING_JSON`` for the CI
# trajectory artifact) but not gated — the point of the experiment is to
# keep the *default* path free.

POLICY_NOISE_SINGLETONS = 16
POLICY_MEASURED_PAIRS = 48
POLICY_PARIS_FLIGHTS = 12  # enumeration breadth per decision (limit is 16)


def build_policy_system(policy: str) -> YoutopiaSystem:
    config = SystemConfig(seed=0, match_policy=policy)
    system = YoutopiaSystem(config=config)
    system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    rows = [f"({fno}, 'Paris')" for fno in range(1, POLICY_PARIS_FLIGHTS + 1)]
    rows += [f"({fno}, 'Rome')" for fno in range(100, 104)]
    system.execute("INSERT INTO Flights VALUES " + ", ".join(rows))
    system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return system


def policy_pair_sql(user: str, partner: str) -> str:
    return (
        f"SELECT '{user}', fno INTO ANSWER Reservation "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        f"AND ('{partner}', fno) IN ANSWER Reservation CHOOSE 1"
    )


def run_policy_workload(policy: str, bypass_policy_layer: bool = False) -> dict:
    """Standing pool of unmatchable singletons + a stream of matchable pairs.

    ``bypass_policy_layer=True`` is the pre-policy control: selection calls
    the matcher's single-group search directly, skipping the policy dispatch
    and its statistics, which is exactly what the coordinator did before the
    enumeration seam existed.
    """
    system = build_policy_system(policy)
    try:
        coordinator = system.coordinator
        if bypass_policy_layer:
            matcher = coordinator._matcher
            coordinator._select_group = (  # type: ignore[method-assign]
                lambda trigger, pool, index: matcher.find_group(trigger, pool, index)
            )
        # standing pool: every pair decision scans past these pending queries
        for index in range(POLICY_NOISE_SINGLETONS):
            system.submit_entangled(
                policy_pair_sql(f"noise-{index}", f"ghost-{index}"), owner=f"noise-{index}"
            )
        started = time.perf_counter()
        for index in range(POLICY_MEASURED_PAIRS):
            left, right = f"p{index}a", f"p{index}b"
            system.submit_entangled(policy_pair_sql(left, right), owner=left)
            system.submit_entangled(policy_pair_sql(right, left), owner=right)
        elapsed = time.perf_counter() - started
        stats = system.statistics()
        answered = stats["queries_answered"]
        assert answered == 2 * POLICY_MEASURED_PAIRS, (
            f"{policy}: only {answered} of {2 * POLICY_MEASURED_PAIRS} answered"
        )
        return {
            "policy": policy,
            "bypass_policy_layer": bypass_policy_layer,
            "pairs": POLICY_MEASURED_PAIRS,
            "standing_pool": POLICY_NOISE_SINGLETONS,
            "elapsed_seconds": elapsed,
            "throughput_qps": answered / elapsed,
            "matching": coordinator.matching_statistics(),
        }
    finally:
        system.close()


def test_policy_overhead_vs_default_path(report):
    """first_match must stay within 0.8x of the no-policy-layer control."""
    control = run_policy_workload("first_match", bypass_policy_layer=True)
    first_match = run_policy_workload("first_match")
    priority = run_policy_workload("priority")
    fairness = run_policy_workload("fairness")

    default_ratio = first_match["throughput_qps"] / control["throughput_qps"]
    priority_ratio = priority["throughput_qps"] / first_match["throughput_qps"]
    fairness_ratio = fairness["throughput_qps"] / first_match["throughput_qps"]

    # the acceptance gate: the default path pays (almost) nothing for the seam
    assert default_ratio >= 0.8, f"default path ratio only {default_ratio:.2f}"

    # the default path never enumerates beyond the first group ...
    matching = first_match["matching"]
    assert matching["policy"] == "first_match"
    assert matching["decisions"] == POLICY_MEASURED_PAIRS
    assert matching["groups_enumerated"] == matching["decisions"]
    assert matching["groups_skipped"] == 0
    # ... while the enumerating policies inspected several candidates each
    for run in (priority, fairness):
        assert run["matching"]["decisions"] == POLICY_MEASURED_PAIRS
        assert run["matching"]["groups_enumerated"] > run["matching"]["decisions"]
        assert run["matching"]["groups_skipped"] > 0

    payload = {
        "experiment": "bench_matching_policies",
        "workload": {
            "pairs": POLICY_MEASURED_PAIRS,
            "standing_pool": POLICY_NOISE_SINGLETONS,
            "paris_flights": POLICY_PARIS_FLIGHTS,
        },
        "control_no_policy_layer": control,
        "first_match": first_match,
        "priority": priority,
        "fairness": fairness,
        "default_path_ratio": default_ratio,
        "priority_ratio": priority_ratio,
        "fairness_ratio": fairness_ratio,
    }
    path = os.environ.get("BENCH_MATCHING_JSON")
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    report(
        control_qps=round(control["throughput_qps"], 1),
        first_match_qps=round(first_match["throughput_qps"], 1),
        priority_qps=round(priority["throughput_qps"], 1),
        fairness_qps=round(fairness["throughput_qps"], 1),
        default_path_ratio=round(default_ratio, 3),
        priority_ratio=round(priority_ratio, 3),
        fairness_ratio=round(fairness_ratio, 3),
        enumerated_priority=priority["matching"]["groups_enumerated"],
    )
