"""cProfile harness for the match hot path.

Profiles retry sweeps over the permanently-pending benchmark workloads from
:mod:`bench_match_plan`, so the flat profile shows exactly where match-attempt
time goes under a chosen ``match_plan`` / ``provider_index`` configuration.

Examples::

    PYTHONPATH=src python benchmarks/profile_matching.py
    PYTHONPATH=src python benchmarks/profile_matching.py \
        --match-plan interpreted --provider-index single_key \
        --workload unify_bound --sweeps 10 --top 40
    PYTHONPATH=src python benchmarks/profile_matching.py --dump /tmp/match.prof

Dumped stats files open with ``python -m pstats /tmp/match.prof`` or snakeviz
(if installed locally; it is not a repo dependency).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_match_plan import (  # noqa: E402
    MATCH_PLAN_WORKLOADS,
    build_system,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--match-plan",
        choices=("compiled", "interpreted"),
        default="compiled",
        help="match execution mode (default: compiled)",
    )
    parser.add_argument(
        "--provider-index",
        choices=("grid", "single_key"),
        default="grid",
        help="provider index implementation (default: grid)",
    )
    parser.add_argument(
        "--workload",
        choices=sorted(MATCH_PLAN_WORKLOADS),
        default="multi_bound",
        help="benchmark workload to profile (default: multi_bound)",
    )
    parser.add_argument(
        "--sweeps", type=int, default=5, help="retry_pending sweeps to profile"
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        help="pstats sort key (default: cumulative; try tottime)",
    )
    parser.add_argument(
        "--top", type=int, default=25, help="number of profile rows to print"
    )
    parser.add_argument(
        "--dump",
        metavar="PATH",
        default=None,
        help="also write raw pstats data to PATH for later inspection",
    )
    args = parser.parse_args(argv)

    system = build_system(args.match_plan, args.provider_index)
    try:
        MATCH_PLAN_WORKLOADS[args.workload](system)
        before = system.statistics()["match_attempts"]

        profiler = cProfile.Profile()
        profiler.enable()
        for _ in range(args.sweeps):
            system.coordinator.retry_pending()
        profiler.disable()

        attempts = system.statistics()["match_attempts"] - before
        print(
            f"profiled {attempts} match attempts "
            f"({args.sweeps} sweeps, workload={args.workload}, "
            f"match_plan={args.match_plan}, provider_index={args.provider_index})\n"
        )
        stats = pstats.Stats(profiler)
        stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
        if args.dump:
            stats.dump_stats(args.dump)
            print(f"raw profile written to {args.dump}")
    finally:
        system.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
