"""E12 — ablation: the two indexing optimizations inside the coordination path.

1. The **provider index** refinement by (relation, arity, constant position,
   constant value).  Without it, every pending query with a head over the same
   answer relation is a candidate provider and must be filtered by
   unification; with it, only queries naming the right partner are considered.
   The gap widens with pool size — exactly the loaded-system setting of E10.

2. The **relational index lookup** rewrite in the execution engine, which
   turns the `dest = '...'` domain subqueries of travel queries into hash
   probes instead of scans.  The gap widens with the size of the Flights
   table.
"""

from __future__ import annotations

import pytest

from conftest import pair_workload
from repro.workloads import run_workload


@pytest.mark.parametrize("use_constant_index", [True, False], ids=["indexed", "naive"])
@pytest.mark.parametrize("noise", [200, 800])
def test_provider_index_ablation(benchmark, report, use_constant_index, noise):
    """Match one pair against a pool of `noise` pending queries."""

    def setup():
        system, items = pair_workload(
            1, seed=5, num_unmatchable=noise, use_constant_index=use_constant_index
        )
        noise_items = [item for item in items if not item.expected_group]
        pair_items = [item for item in items if item.expected_group]
        for item in noise_items:
            system.submit_entangled(item.query, owner=item.owner)
        return (system, pair_items), {}

    def run(system, pair_items):
        before = system.statistics()["unification_attempts"]
        requests = [system.submit_entangled(item.query, owner=item.owner) for item in pair_items]
        assert all(request.is_answered for request in requests)
        return system.statistics()["unification_attempts"] - before

    unifications = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    report(
        provider_index="constant-position" if use_constant_index else "relation-only",
        pool_noise=noise,
        unification_attempts_for_pair=unifications,
    )


@pytest.mark.parametrize("enable_index_lookup", [True, False], ids=["hash-probe", "scan"])
@pytest.mark.parametrize("num_flights", [200, 800])
def test_engine_index_lookup_ablation(benchmark, report, enable_index_lookup, num_flights):
    """Domain-subquery grounding with and without the index-lookup rewrite."""
    from repro.workloads import WorkloadConfig, WorkloadGenerator, build_loaded_system

    def setup():
        system, service, _friends = build_loaded_system(
            num_flights=num_flights, num_hotels=20, num_users=4, seed=6,
            enable_index_lookup=enable_index_lookup,
        )
        system.database.table("Flights").create_index("by_dest", ["dest"])
        generator = WorkloadGenerator(service, WorkloadConfig(num_pairs=20, seed=6))
        return (system, generator.generate()), {}

    def run(system, items):
        result = run_workload(system, items)
        assert result.all_answered
        return result

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    report(
        plan="IndexLookup" if enable_index_lookup else "Scan+Filter",
        flights=num_flights,
        queries=result.submitted,
        domain_queries=result.statistics["domain_queries"],
    )
