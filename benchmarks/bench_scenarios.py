"""E3-E8 — the demo scenarios of Section 3.1 as benchmarks.

One benchmark per scenario; each measures the full middle-tier path (building
the entangled queries from TripRequests, submitting them, coordinating, and
writing the reservations) on a fresh travel database.  The expected shape is
that every scenario coordinates completely and that cost grows with the number
of queries in the coordination group, not with the size of the database.
"""

from __future__ import annotations

import pytest

from repro.workloads import (
    adhoc_chain,
    group_flight,
    group_flight_hotel,
    many_pairs,
    pair_flight,
    pair_flight_hotel,
)


def test_pair_flight(benchmark, report):
    """E3 — book a flight with a friend."""
    outcome = benchmark.pedantic(lambda: pair_flight(seed=0), rounds=15, iterations=1)
    assert outcome.coordinated
    report(queries=outcome.result.submitted, answered=outcome.result.answered,
           groups=outcome.result.statistics["groups_matched"])


def test_pair_flight_hotel(benchmark, report):
    """E4 — book a flight and a hotel with a friend (one entangled query each)."""
    outcome = benchmark.pedantic(lambda: pair_flight_hotel(seed=0), rounds=15, iterations=1)
    assert outcome.coordinated
    report(queries=outcome.result.submitted,
           flight_tuples=len(outcome.answer_relation("Reservation")),
           hotel_tuples=len(outcome.answer_relation("HotelReservation")))


@pytest.mark.parametrize("num_pairs", [4, 16, 64])
def test_many_pairs(benchmark, report, num_pairs):
    """E5 — multiple simultaneous bookings (independent pairs)."""
    outcome = benchmark.pedantic(
        lambda: many_pairs(num_pairs=num_pairs, seed=0), rounds=5, iterations=1
    )
    assert outcome.coordinated
    per_query_ms = 1000.0 * outcome.result.elapsed_seconds / outcome.result.submitted
    report(pairs=num_pairs, queries=outcome.result.submitted,
           per_query_ms=round(per_query_ms, 3))


@pytest.mark.parametrize("group_size", [2, 4, 8])
def test_group_flight(benchmark, report, group_size):
    """E6 — group flight booking (the demo uses a group of four)."""
    outcome = benchmark.pedantic(
        lambda: group_flight(group_size=group_size, seed=0), rounds=5, iterations=1
    )
    assert outcome.coordinated
    flights = {fno for _t, fno in outcome.answer_relation("Reservation")}
    assert len(flights) == 1
    report(group_size=group_size, queries=outcome.result.submitted,
           structural_nodes=outcome.result.statistics["structural_nodes"])


@pytest.mark.parametrize("group_size", [2, 4])
def test_group_flight_hotel(benchmark, report, group_size):
    """E7 — group flight and hotel booking."""
    outcome = benchmark.pedantic(
        lambda: group_flight_hotel(group_size=group_size, seed=0), rounds=5, iterations=1
    )
    assert outcome.coordinated
    report(group_size=group_size,
           flight_tuples=len(outcome.answer_relation("Reservation")),
           hotel_tuples=len(outcome.answer_relation("HotelReservation")))


@pytest.mark.parametrize("length", [3, 5, 7])
def test_adhoc_chain(benchmark, report, length):
    """E8 — ad-hoc coordination structures (chains of overlapping constraints)."""
    outcome = benchmark.pedantic(
        lambda: adhoc_chain(length=length, seed=0), rounds=5, iterations=1
    )
    assert outcome.coordinated
    report(chain_length=length,
           flights_chosen=len({fno for _t, fno in outcome.answer_relation("Reservation")}),
           groups=outcome.result.statistics["groups_matched"])
