"""E14 — the network transport vs. the in-process service.

Two experiments on the same 200-query pair workload (100 cross-referencing
pairs over one Flights table):

* **round-trip latency** — one pair at a time: ``submit`` (pending),
  ``submit`` (partner answers the group), push-driven ``result()``.  Reported
  per pair, remote vs. in-process; the delta is the price of two request
  frames plus one push notification.
* **batched throughput** — the whole workload through one ``submit_many``.
  The batch crosses the wire as a *single* request frame, so the transport
  cost amortises over 200 queries and throughput must stay **within 2× of
  in-process** (the acceptance gate below; matching work dominates both).
  The gate was originally declared at 5×, but the measured slowdown has sat
  around 1.05× since the batch path landed — the assertion is calibrated to
  2× so a real regression (say, a per-item frame creeping back in) trips it,
  and the JSON artifact records the original target for the trajectory.

Set ``BENCH_REMOTE_JSON=/path/out.json`` to dump the raw numbers (the CI
remote-conformance job uploads this as an artifact).
"""

from __future__ import annotations

import json
import os
import time

from repro.service import InProcessService, SubmitRequest, SystemConfig
from repro.service.remote import CoordinationServer, RemoteService

NUM_PAIRS = 100
LATENCY_PAIRS = 30

SETUP = (
    "CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT);"
    + "INSERT INTO Flights VALUES "
    + ", ".join(f"({100 + index}, 'Paris')" for index in range(40))
    + ";"
)


def pair_requests(num_pairs: int, prefix: str) -> list[SubmitRequest]:
    """``2 * num_pairs`` submissions forming cross-referencing pairs."""

    def booking(owner: str, partner: str) -> SubmitRequest:
        return SubmitRequest(
            owner=owner,
            sql=(
                f"SELECT '{owner}', fno INTO ANSWER Reservation "
                "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
                f"AND ('{partner}', fno) IN ANSWER Reservation CHOOSE 1"
            ),
        )

    requests: list[SubmitRequest] = []
    for index in range(num_pairs):
        left, right = f"{prefix}-a{index}", f"{prefix}-b{index}"
        requests.extend((booking(left, right), booking(right, left)))
    return requests


def fresh_inprocess() -> InProcessService:
    service = InProcessService(config=SystemConfig(seed=0))
    service.execute_script(SETUP)
    service.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return service


def fresh_remote() -> tuple[CoordinationServer, RemoteService]:
    server = CoordinationServer(config=SystemConfig(seed=0))
    host, port = server.start()
    client = RemoteService.connect(host, port)
    client.execute_script(SETUP)
    client.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return server, client


def timed_batch(service, requests) -> tuple[float, int]:
    """Submit the whole workload in one batch; (elapsed seconds, answered)."""
    started = time.perf_counter()
    handles = service.submit_many(requests)
    elapsed = time.perf_counter() - started
    answered = sum(1 for handle in handles if handle.is_answered)
    return elapsed, answered


def timed_pair_roundtrips(service, requests) -> list[float]:
    """Per-pair latency of submit + partner submit + push-driven result()."""
    latencies: list[float] = []
    for index in range(0, len(requests), 2):
        started = time.perf_counter()
        first = service.submit(requests[index])
        service.submit(requests[index + 1])
        first.result(timeout=10.0)
        latencies.append(time.perf_counter() - started)
    return latencies


def _dump_json(payload: dict) -> None:
    path = os.environ.get("BENCH_REMOTE_JSON")
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


def test_batched_submit_many_remote_within_2x_of_inprocess(report):
    """The acceptance experiment: one frame per batch keeps remote ~par."""
    inprocess = fresh_inprocess()
    inprocess_elapsed, inprocess_answered = timed_batch(
        inprocess, pair_requests(NUM_PAIRS, "ip")
    )
    inprocess_answers = sorted(inprocess.answers("Reservation"))

    server, client = fresh_remote()
    try:
        frames_before = client.frames_sent
        remote_elapsed, remote_answered = timed_batch(client, pair_requests(NUM_PAIRS, "ip"))
        frames_used = client.frames_sent - frames_before
        remote_answers = sorted(client.answers("Reservation"))
    finally:
        client.close()
        server.stop()

    assert inprocess_answered == remote_answered == 2 * NUM_PAIRS
    assert frames_used == 1  # the whole batch crossed the wire in one frame
    # transport transparency: identical pairings booked on both paths
    assert remote_answers == inprocess_answers

    slowdown = remote_elapsed / inprocess_elapsed
    throughput_inprocess = 2 * NUM_PAIRS / inprocess_elapsed
    throughput_remote = 2 * NUM_PAIRS / remote_elapsed
    report(
        queries=2 * NUM_PAIRS,
        inprocess_s=round(inprocess_elapsed, 4),
        remote_s=round(remote_elapsed, 4),
        slowdown=round(slowdown, 2),
        inprocess_qps=round(throughput_inprocess, 1),
        remote_qps=round(throughput_remote, 1),
    )
    _dump_json(
        {
            "experiment": "batched_submit_many",
            "queries": 2 * NUM_PAIRS,
            "inprocess_seconds": inprocess_elapsed,
            "remote_seconds": remote_elapsed,
            "slowdown": slowdown,
            "inprocess_qps": throughput_inprocess,
            "remote_qps": throughput_remote,
            "frames_for_batch": frames_used,
            "gate_slowdown": 2.0,
            "gate_note": (
                "originally gated at 5x; measured ~1.05x since the single-frame "
                "batch path landed, so the gate is recalibrated to 2x"
            ),
        }
    )
    # the acceptance gate: batched remote throughput within 2x of in-process
    # (recalibrated from the original 5x target, which the measured ~1.05x
    # slowdown made vacuous — see the module docstring)
    assert slowdown <= 2.0, f"remote batch {slowdown:.2f}x slower than in-process"


def test_single_pair_roundtrip_latency(report):
    """Submit/wait latency per coordinated pair, remote vs. in-process."""
    inprocess = fresh_inprocess()
    inprocess_latencies = timed_pair_roundtrips(
        inprocess, pair_requests(LATENCY_PAIRS, "lat")
    )

    server, client = fresh_remote()
    try:
        remote_latencies = timed_pair_roundtrips(client, pair_requests(LATENCY_PAIRS, "lat"))
    finally:
        client.close()
        server.stop()

    def median(values: list[float]) -> float:
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    inprocess_ms = median(inprocess_latencies) * 1000
    remote_ms = median(remote_latencies) * 1000
    report(
        pairs=LATENCY_PAIRS,
        inprocess_median_ms=round(inprocess_ms, 3),
        remote_median_ms=round(remote_ms, 3),
        overhead_ms=round(remote_ms - inprocess_ms, 3),
    )
    # sanity only — the absolute numbers are environment-dependent
    assert remote_ms < 1000, "a localhost round trip should be far under a second"
