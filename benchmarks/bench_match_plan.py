"""Compiled match plans vs. interpreted matching, grid vs. single-key index.

Two workloads, four configurations (``match_plan`` x ``provider_index``):

* **multi-bound** (gated): permanently-pending grounding-fail pairs over an
  arity-3 answer relation ``GridRes(traveler, city, fno)``.  Every head binds
  ``traveler`` to a unique partner constant (tiny per-column buckets) and
  ``city`` to the shared constant ``'Paris'`` (one huge bucket).  The legacy
  single-key index intersects *sets* built from both columns and then scans
  the whole relation bucket per probe; the grid index seeds from the most
  selective column and touches O(1) providers.  Flight domains are disjoint
  (ParisWest vs. ParisEast) so structural unification succeeds but grounding
  always fails — pools stay pending and every ``retry_pending()`` sweep
  re-runs the full match attempt, giving a stable hot loop to time.

  Gate: ``compiled`` + ``grid`` must sustain >= 1.5x the match-attempt
  throughput of ``interpreted`` + ``single_key`` (the ISSUE 9 acceptance
  bar).  Attempt and pending counts must be identical across all four
  configurations — the speedup must come from doing the same work faster,
  never from doing less of it.

* **unify-bound** (reported, not gated): ``P`` hub queries share the constant
  head ``('hub', 'Paris', <fno>)`` so a single trigger probe yields ``P``
  candidates under *both* indexes; each candidate costs one unification and
  then dead-ends on a ghost partner.  This isolates the compiled-plan
  contribution (interned constants + cached pair ops) from the index ablation.

Set ``BENCH_MATCH_PLAN_JSON=/path/out.json`` to dump machine-readable results
(consumed by the CI bench-trajectory job).

Run with: PYTHONPATH=src python -m pytest benchmarks/bench_match_plan.py -v
"""

from __future__ import annotations

import json
import os
import time

from repro import SystemConfig, YoutopiaSystem

CONFIGS = (
    ("interpreted", "single_key"),
    ("interpreted", "grid"),
    ("compiled", "single_key"),
    ("compiled", "grid"),
)

# The acceptance gate from ISSUE 9: compiled+grid vs. interpreted+single_key.
GATE_MIN_SPEEDUP = 1.5

MULTI_BOUND_PAIRS = 300
MULTI_BOUND_SWEEPS = 3
UNIFY_HUBS = 150
UNIFY_TRIGGERS = 10
UNIFY_SWEEPS = 3


def entangled(user: str, partner: str, dest: str) -> str:
    """Arity-3 coordination template with two bound head columns."""
    return (
        f"SELECT '{user}', 'Paris', fno INTO ANSWER GridRes "
        f"WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') "
        f"AND ('{partner}', 'Paris', fno) IN ANSWER GridRes CHOOSE 1"
    )


def build_system(match_plan: str, provider_index: str) -> YoutopiaSystem:
    config = SystemConfig(
        seed=0,
        match_plan=match_plan,
        provider_index=provider_index,
    )
    system = YoutopiaSystem(config=config)
    system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    rows = [(fno, "ParisWest") for fno in range(1, 4)]
    rows += [(fno, "ParisEast") for fno in range(4, 7)]
    values = ", ".join(f"({fno}, '{dest}')" for fno, dest in rows)
    system.execute(f"INSERT INTO Flights VALUES {values}")
    system.declare_answer_relation(
        "GridRes", ["traveler", "city", "fno"], ["TEXT", "TEXT", "INTEGER"]
    )
    return system


def submit_multi_bound(system: YoutopiaSystem) -> None:
    """300 grounding-fail pairs: disjoint flight domains keep them pending."""
    queries = []
    for i in range(MULTI_BOUND_PAIRS):
        left, right = f"g{i}a", f"g{i}b"
        queries.append(entangled(left, right, "ParisWest"))
        queries.append(entangled(right, left, "ParisEast"))
    system.submit_many(queries)


def submit_unify_bound(system: YoutopiaSystem) -> None:
    """P hub providers sharing one constant column + T triggers probing them."""
    queries = [entangled("hub", f"ghost{i}", "ParisWest") for i in range(UNIFY_HUBS)]
    queries += [entangled(f"trig{t}", "hub", "ParisEast") for t in range(UNIFY_TRIGGERS)]
    system.submit_many(queries)


# Named workloads shared with the cProfile harness (profile_matching.py).
MATCH_PLAN_WORKLOADS = {
    "multi_bound": submit_multi_bound,
    "unify_bound": submit_unify_bound,
}


def timed_sweeps(system: YoutopiaSystem, sweeps: int) -> dict:
    """Run retry sweeps over a permanently-pending pool; return throughput."""
    before = system.statistics()["match_attempts"]
    started = time.perf_counter()
    for _ in range(sweeps):
        system.coordinator.retry_pending()
    elapsed = time.perf_counter() - started
    attempts = system.statistics()["match_attempts"] - before
    return {
        "sweeps": sweeps,
        "attempts": attempts,
        "elapsed_s": round(elapsed, 6),
        "attempts_per_s": round(attempts / elapsed, 2) if elapsed > 0 else 0.0,
    }


def run_workload(submit, sweeps: int) -> dict:
    results = {}
    for match_plan, provider_index in CONFIGS:
        system = build_system(match_plan, provider_index)
        try:
            submit(system)
            stats = timed_sweeps(system, sweeps)
            stats["pending"] = system.coordinator.pending_count()
            stats["answered"] = system.statistics()["queries_answered"]
            matching = system.coordinator.matching_statistics()
            if "plans_compiled" in matching:
                stats["plans_compiled"] = matching["plans_compiled"]
                stats["pair_ops_hits"] = matching["pair_ops_hits"]
            results[f"{match_plan}_{provider_index}"] = stats
        finally:
            system.close()
    return results


def check_equivalence(results: dict) -> None:
    """Every configuration must do identical work — only the speed may differ."""
    baseline = results["interpreted_single_key"]
    for name, stats in results.items():
        assert stats["attempts"] == baseline["attempts"], (
            f"{name}: attempts {stats['attempts']} != {baseline['attempts']}"
        )
        assert stats["pending"] == baseline["pending"], (
            f"{name}: pending {stats['pending']} != {baseline['pending']}"
        )
        assert stats["answered"] == baseline["answered"], (
            f"{name}: answered {stats['answered']} != {baseline['answered']}"
        )


def speedup(results: dict, fast: str, slow: str) -> float:
    return round(results[fast]["attempts_per_s"] / results[slow]["attempts_per_s"], 3)


def maybe_dump_json(payload: dict) -> None:
    path = os.environ.get("BENCH_MATCH_PLAN_JSON")
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_match_plan_throughput(report) -> None:
    multi = run_workload(submit_multi_bound, MULTI_BOUND_SWEEPS)
    check_equivalence(multi)
    assert multi["interpreted_single_key"]["pending"] == MULTI_BOUND_PAIRS * 2
    assert multi["interpreted_single_key"]["answered"] == 0

    unify = run_workload(submit_unify_bound, UNIFY_SWEEPS)
    check_equivalence(unify)
    assert unify["interpreted_single_key"]["answered"] == 0

    gated = speedup(multi, "compiled_grid", "interpreted_single_key")
    grid_only = speedup(multi, "interpreted_grid", "interpreted_single_key")
    compiled_only = speedup(multi, "compiled_single_key", "interpreted_single_key")
    unify_compiled = speedup(unify, "compiled_grid", "interpreted_grid")

    payload = {
        "experiment": "bench_match_plan",
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "multi_bound": multi,
        "unify_bound": unify,
        "speedup_compiled_grid": gated,
        "speedup_grid_only": grid_only,
        "speedup_compiled_only": compiled_only,
        "unify_speedup_compiled": unify_compiled,
    }
    maybe_dump_json(payload)

    report(
        **{f"multi_{name}_aps": stats["attempts_per_s"] for name, stats in multi.items()},
        speedup_compiled_grid=gated,
        gate_min=GATE_MIN_SPEEDUP,
        speedup_grid_only=grid_only,
        speedup_compiled_only=compiled_only,
        unify_speedup_compiled=unify_compiled,
    )

    assert gated >= GATE_MIN_SPEEDUP, (
        f"compiled+grid speedup {gated} below gate {GATE_MIN_SPEEDUP} "
        f"vs interpreted+single_key"
    )
