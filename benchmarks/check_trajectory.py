"""Diff a merged bench-trajectory artifact against the committed baseline.

``benchmarks/baseline.json`` records the expected value of each tracked
benchmark metric as a dotted path into the trajectory artifact, e.g.
``bench_match_plan.speedup_compiled_grid`` resolves to
``trajectory["benchmarks"]["bench_match_plan"]["speedup_compiled_grid"]``.

Policy (the ISSUE 9 bench-trajectory contract):

* a **gated** metric that regresses by more than the tolerance (default 25%)
  against its baseline value **fails the job** (exit 1);
* every other regression — a gated metric inside tolerance, or any non-gated
  metric — emits a ``::warning::`` annotation but keeps the job green;
* metrics missing from the trajectory (their benchmark job failed and the
  partial artifact shipped anyway) warn rather than fail — the benchmark
  job's own red status already covers the loss;
* a per-metric delta table is appended to ``$GITHUB_STEP_SUMMARY`` when set,
  and always printed to stdout.

Baseline values for gated metrics are deliberately chosen so that the 25%
regression floor coincides with the benchmark's own hard assert gate — the
trajectory job therefore fails only for drift the benchmark itself would
reject, while the delta table surfaces slower erosion early.

Usage::

    python benchmarks/check_trajectory.py \
        --baseline benchmarks/baseline.json \
        --trajectory bench-trajectory.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional

# Regressions smaller than this are treated as run-to-run noise: no warning,
# just a table row.  Gated failure always uses the baseline's tolerance.
NOISE_BAND = 0.05

DIRECTIONS = ("higher_is_better", "lower_is_better")


def load_json(path: Path, label: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"check_trajectory: cannot read {label} {path}: {exc}")
    if not isinstance(payload, dict):
        raise SystemExit(f"check_trajectory: {label} {path} is not a JSON object")
    return payload


def resolve(trajectory: dict, dotted: str) -> Optional[float]:
    """Walk ``benchmarks.<experiment>.<nested...>`` by the dotted path."""
    node: object = trajectory.get("benchmarks", {})
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def regression_fraction(baseline: float, current: float, direction: str) -> float:
    """How far *current* regressed past *baseline*, as a fraction (>= 0)."""
    if baseline == 0:
        return 0.0
    if direction == "lower_is_better":
        return max(0.0, (current - baseline) / abs(baseline))
    return max(0.0, (baseline - current) / abs(baseline))


def check(baseline: dict, trajectory: dict) -> tuple[list[str], list[str], int]:
    """Return (table rows, warning annotations, gated failure count)."""
    tolerance = float(baseline.get("tolerance", 0.25))
    metrics = baseline.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise SystemExit("check_trajectory: baseline has no metrics")

    rows: list[str] = []
    warnings: list[str] = []
    failures = 0
    for dotted in sorted(metrics):
        spec = metrics[dotted]
        base_value = float(spec["value"])
        gated = bool(spec.get("gate", False))
        direction = spec.get("direction", "higher_is_better")
        if direction not in DIRECTIONS:
            raise SystemExit(
                f"check_trajectory: {dotted}: unknown direction {direction!r}"
            )
        gate_label = "gated" if gated else "tracked"

        current = resolve(trajectory, dotted)
        if current is None:
            warnings.append(
                f"{dotted}: missing from trajectory (benchmark job failed?)"
            )
            rows.append(f"| `{dotted}` | {base_value:g} | — | — | {gate_label} | missing |")
            continue

        delta_pct = (
            (current - base_value) / abs(base_value) * 100 if base_value else 0.0
        )
        regressed = regression_fraction(base_value, current, direction)
        if gated and regressed > tolerance:
            failures += 1
            status = f"FAIL (>{tolerance:.0%} regression)"
        elif regressed > NOISE_BAND:
            warnings.append(
                f"{dotted}: regressed {regressed:.1%} vs baseline "
                f"{base_value:g} (now {current:g}, {direction})"
            )
            status = "regressed (warning)"
        else:
            status = "ok"
        rows.append(
            f"| `{dotted}` | {base_value:g} | {current:g} | "
            f"{delta_pct:+.1f}% | {gate_label} | {status} |"
        )
    return rows, warnings, failures


def emit_summary(rows: list[str], trajectory: dict) -> None:
    sha = trajectory.get("git_sha", "unknown")
    lines = [
        "## Benchmark trajectory vs. baseline",
        "",
        f"Commit: `{sha}`",
        "",
        "| metric | baseline | current | delta | kind | status |",
        "| --- | --- | --- | --- | --- | --- |",
        *rows,
        "",
    ]
    text = "\n".join(lines)
    print(text)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(text + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail CI on gated benchmark regressions vs. baseline.json"
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/baseline.json",
        help="committed baseline metric file",
    )
    parser.add_argument(
        "--trajectory",
        default="bench-trajectory.json",
        help="merged trajectory artifact from collect_results.py",
    )
    args = parser.parse_args(argv)

    baseline = load_json(Path(args.baseline), "baseline")
    trajectory = load_json(Path(args.trajectory), "trajectory")

    rows, warnings, failures = check(baseline, trajectory)
    emit_summary(rows, trajectory)
    for warning in warnings:
        print(f"::warning::check_trajectory: {warning}")
    if failures:
        print(
            f"check_trajectory: {failures} gated metric(s) regressed beyond "
            f"tolerance",
            file=sys.stderr,
        )
        return 1
    print("check_trajectory: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
