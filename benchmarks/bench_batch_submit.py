"""E13 — batch submission (``submit_many``) vs. the loop-of-``submit`` baseline.

Every earlier benchmark submits entangled queries in a loop, which runs a full
inline match pass per arrival: for N coordinating pairs that is 2N match
attempts, half of them doomed to fail because the partner has not arrived yet.
The service layer's ``submit_many`` registers the whole batch under one lock
acquisition and runs a *single deferred* match pass, so a pair costs one
successful attempt and an unmatchable query exactly one (the final retry
sweep).

Acceptance shape (checked by the assertions below, on a 200-query workload):
``match_attempts(batch) <= groups_matched + still_pending``, i.e. at most one
match pass per answered group plus one sweep over the leftovers — versus one
full pass per submission for the loop baseline.
"""

from __future__ import annotations

import json
import os

import pytest

from conftest import pair_workload
from repro.workloads import run_workload


@pytest.mark.parametrize("num_pairs", [25, 100])
def test_loop_submit_baseline(benchmark, report, num_pairs):
    """The classic one-at-a-time submission loop (2N inline match passes)."""

    def setup():
        return pair_workload(num_pairs, seed=11), {}

    def run(system, items):
        result = run_workload(system, items, batch=False)
        assert result.answered == 2 * num_pairs
        return result

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    report(
        mode="loop",
        queries=result.submitted,
        match_attempts=result.statistics["match_attempts"],
        failed_match_attempts=result.statistics["failed_match_attempts"],
        structural_nodes=result.statistics["structural_nodes"],
    )


@pytest.mark.parametrize("num_pairs", [25, 100])
def test_batch_submit_many(benchmark, report, num_pairs):
    """The whole workload through ``submit_many`` (one deferred match pass)."""

    def setup():
        return pair_workload(num_pairs, seed=11), {}

    def run(system, items):
        result = run_workload(system, items, batch=True)
        assert result.answered == 2 * num_pairs
        # at most one match pass per answered group plus one final retry
        # sweep over whatever stayed pending
        assert result.statistics["match_attempts"] <= (
            result.statistics["groups_matched"] + result.pending
        )
        return result

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    report(
        mode="batch",
        queries=result.submitted,
        match_attempts=result.statistics["match_attempts"],
        failed_match_attempts=result.statistics["failed_match_attempts"],
        structural_nodes=result.statistics["structural_nodes"],
    )


def test_batch_vs_loop_match_attempts(report):
    """Side-by-side on the acceptance workload: 100 pairs = 200 queries."""
    loop_system, items = pair_workload(100, seed=12)
    loop_result = run_workload(loop_system, items, batch=False)

    batch_system, items = pair_workload(100, seed=12)
    batch_result = run_workload(batch_system, items, batch=True)

    assert loop_result.answered == batch_result.answered == 200
    # the loop pays one full inline pass per submission...
    assert loop_result.statistics["match_attempts"] == 200
    # ...the batch pays at most one pass per answered group + the final sweep
    assert batch_result.statistics["match_attempts"] <= (
        batch_result.statistics["groups_matched"] + batch_result.pending
    )
    assert (
        batch_result.statistics["match_attempts"]
        < loop_result.statistics["match_attempts"]
    )
    # Set BENCH_BATCH_JSON=/path/out.json to dump the raw numbers (merged
    # into the CI bench-trajectory artifact by benchmarks/collect_results.py)
    json_path = os.environ.get("BENCH_BATCH_JSON")
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "experiment": "bench_batch_submit",
                    "queries": 200,
                    "loop": {
                        "match_attempts": loop_result.statistics["match_attempts"],
                        "failed_match_attempts": loop_result.statistics[
                            "failed_match_attempts"
                        ],
                        "elapsed_seconds": loop_result.elapsed_seconds,
                    },
                    "batch": {
                        "match_attempts": batch_result.statistics["match_attempts"],
                        "failed_match_attempts": batch_result.statistics[
                            "failed_match_attempts"
                        ],
                        "elapsed_seconds": batch_result.elapsed_seconds,
                    },
                },
                handle,
                indent=2,
                sort_keys=True,
            )
    report(
        queries=200,
        loop_match_attempts=loop_result.statistics["match_attempts"],
        batch_match_attempts=batch_result.statistics["match_attempts"],
        loop_failed=loop_result.statistics["failed_match_attempts"],
        batch_failed=batch_result.statistics["failed_match_attempts"],
        loop_seconds=round(loop_result.elapsed_seconds, 4),
        batch_seconds=round(batch_result.elapsed_seconds, 4),
    )


@pytest.mark.parametrize("noise", [0, 200])
def test_batch_submit_with_pool_noise(benchmark, report, noise):
    """Batch submission while unmatchable queries ride along in the same batch."""

    def setup():
        return pair_workload(25, seed=13, num_unmatchable=noise), {}

    def run(system, items):
        result = run_workload(system, items, batch=True)
        assert result.answered == 50
        assert result.pending == noise
        return result

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    report(
        noise=noise,
        match_attempts=result.statistics["match_attempts"],
        groups=result.statistics["groups_matched"],
    )
