"""E15 — cluster scaling: matched-queries/sec, 1 node vs. 4 nodes.

The cluster's scaling claim: entangled workloads whose relations spread
across member nodes coordinate in parallel *and* in smaller matching
universes.  Each member node is a separate ``youtopia-cli serve`` process
(no shared GIL), and — just as important on any core count — partitioning
shrinks each node's pending pool, which several coordination paths touch
linearly per submission (the pending-row bookkeeping scan dominates once
the pool is non-trivial, so per-universe work is superlinear in pool size).

The experiment models the paper's steady state, where most entangled
queries wait a long time for a partner: an (untimed) standing pool of
``GHOSTS_PER_RELATION`` never-matching queries per relation is submitted
first, then the timed phase pushes ``PAIRS_PER_RELATION`` cross-referencing
pairs per relation through the router as single-frame-per-node batches.
Aggregate matched-queries/sec is gated at ``BENCH_CLUSTER_MIN_SCALING``
(default **2.5×**) going from a 1-node to a 4-node cluster; perfect would
be ~4× minus the CRC32 relation→node skew.

Set ``BENCH_CLUSTER_JSON=/path/out.json`` to dump the raw numbers (the CI
cluster-conformance job uploads this into the bench-trajectory artifact).
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import time
from pathlib import Path

from repro.service import SubmitRequest
from repro.service.remote import RemoteService
from repro.cluster import BackgroundClusterRouter, NodeSpec, PlacementMap

REPO_ROOT = Path(__file__).resolve().parent.parent

NUM_RELATIONS = 32
PAIRS_PER_RELATION = 5
GHOSTS_PER_RELATION = 100

SETUP = (
    "CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT);"
    + "INSERT INTO Flights VALUES "
    + ", ".join(f"({100 + index}, 'Paris')" for index in range(60))
    + ";"
)


class NodeProcess:
    """One ``youtopia-cli serve`` member-node subprocess on an ephemeral port."""

    def __init__(self, index: int, node_count: int) -> None:
        argv = [
            sys.executable,
            "-m",
            "repro.apps.cli",
            "serve",
            "--port",
            "0",
            "--seed",
            "0",
            "--cluster-node",
            f"{index}/{node_count}",
        ]
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.process = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env
        )
        self.port = self._read_port()

    def _read_port(self, timeout: float = 30.0) -> int:
        deadline = time.monotonic() + timeout
        assert self.process.stdout is not None
        fd = self.process.stdout.fileno()
        buffer = ""
        while True:
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                if "listening on" in line:
                    return int(line.rsplit(":", 1)[1])
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(f"node did not report a port within {timeout}s")
            ready, _, _ = select.select([fd], [], [], remaining)
            if not ready:
                raise RuntimeError(f"node did not report a port within {timeout}s")
            chunk = os.read(fd, 4096)
            if not chunk:
                raise RuntimeError(
                    f"node exited (code {self.process.poll()}) before listening"
                )
            buffer += chunk.decode("utf-8", errors="replace")

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)


def entangled(owner: str, partner: str, relation: str) -> SubmitRequest:
    return SubmitRequest(
        owner=owner,
        sql=(
            f"SELECT '{owner}', fno INTO ANSWER {relation} "
            "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
            f"AND ('{partner}', fno) IN ANSWER {relation} CHOOSE 1"
        ),
    )


def ghost_workload() -> list[SubmitRequest]:
    """The standing pool: queries whose partner never arrives."""
    return [
        entangled(f"g{relation_index}_{ghost_index}", f"never_{ghost_index}", f"Booking{relation_index}")
        for ghost_index in range(GHOSTS_PER_RELATION)
        for relation_index in range(NUM_RELATIONS)
    ]


def pair_workload() -> list[SubmitRequest]:
    """Cross-referencing pairs over every relation, pair-interleaved."""
    requests: list[SubmitRequest] = []
    for pair_index in range(PAIRS_PER_RELATION):
        for relation_index in range(NUM_RELATIONS):
            relation = f"Booking{relation_index}"
            left = f"a{relation_index}_{pair_index}"
            right = f"b{relation_index}_{pair_index}"
            requests.append(entangled(left, right, relation))
            requests.append(entangled(right, left, relation))
    return requests


def run_cluster(node_count: int) -> dict:
    """Start the cluster, push the workload through the router, measure."""
    nodes = [NodeProcess(index, node_count) for index in range(node_count)]
    router = None
    client = None
    try:
        placement = PlacementMap(
            [NodeSpec(index, "127.0.0.1", node.port) for index, node in enumerate(nodes)]
        )
        router = BackgroundClusterRouter(placement)
        router.start()
        client = RemoteService.connect(*router.address)
        client.execute_script(SETUP)
        for index in range(NUM_RELATIONS):
            client.declare_answer_relation(
                f"Booking{index}", ["traveler", "fno"], ["TEXT", "INTEGER"]
            )
        ghosts = client.submit_many(ghost_workload())  # untimed standing pool
        assert not any(handle.is_answered for handle in ghosts)
        requests = pair_workload()

        started = time.perf_counter()
        handles = client.submit_many(requests)
        elapsed = time.perf_counter() - started

        answered = sum(1 for handle in handles if handle.is_answered)
        stats = client.stats()
        distribution = [
            placement.node_for_relation(f"booking{index}")
            for index in range(NUM_RELATIONS)
        ]
        # Where WOULD cross-node signatures take up residence on this map?
        # (The workload itself is single-relation by design; this publishes
        # the per-signature residence spread the router would use.)
        residence_nodes = sorted(
            {
                placement.residence_node_for(signature)
                for first in range(NUM_RELATIONS)
                for second in range(first + 1, NUM_RELATIONS)
                for signature in [frozenset({f"booking{first}", f"booking{second}"})]
                if placement.node_for_signature(signature) is None
            }
        )
        return {
            "node_count": node_count,
            "queries": len(requests),
            "standing_pool": len(ghosts),
            "answered": answered,
            "elapsed_seconds": elapsed,
            "matched_qps": answered / elapsed,
            "relations_per_node": [
                distribution.count(node) for node in range(node_count)
            ],
            "cross_node_submits": stats.cluster["cross_node_submits"],
            "relocations": stats.cluster["relocations"],
            "residence_nodes": residence_nodes,
        }
    finally:
        if client is not None:
            client.close()
        if router is not None:
            router.stop()
        for node in nodes:
            node.terminate()


def _dump_json(payload: dict) -> None:
    path = os.environ.get("BENCH_CLUSTER_JSON")
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


def test_matched_throughput_scales_from_one_to_four_nodes(report):
    """The acceptance experiment: >= 2.5x matched-qps going 1 -> 4 nodes."""
    min_scaling = float(os.environ.get("BENCH_CLUSTER_MIN_SCALING", "2.5"))
    single = run_cluster(1)
    quad = run_cluster(4)

    total = single["queries"]
    assert single["answered"] == quad["answered"] == total
    # single-relation signatures never leave their home node
    assert quad["cross_node_submits"] == 0
    assert quad["relocations"] == 0

    # per-signature residence spreads cross-node load over >= 2 of 4 nodes
    assert len(quad["residence_nodes"]) >= 2

    scaling = quad["matched_qps"] / single["matched_qps"]
    report(
        queries=total,
        qps_1_node=round(single["matched_qps"], 1),
        qps_4_nodes=round(quad["matched_qps"], 1),
        scaling=round(scaling, 2),
        relations_per_node=quad["relations_per_node"],
        residence_nodes=quad["residence_nodes"],
    )
    _dump_json(
        {
            "experiment": "cluster_scaling",
            "single_node": single,
            "four_nodes": quad,
            "scaling": scaling,
            "gate_min_scaling": min_scaling,
        }
    )
    assert scaling >= min_scaling, (
        f"matched-qps scaled only {scaling:.2f}x from 1 to 4 nodes "
        f"(gate: {min_scaling}x)"
    )
