"""Merge the per-job benchmark JSON dumps into one trajectory artifact.

Each benchmark job in CI writes its raw numbers to a standalone JSON file
(``bench_batch_submit.json``, ``bench_sharded_matching.json``,
``bench_remote_transport.json``, ``bench_connection_scaling.json``,
``bench_cluster_scaling.json``, ``bench_durability.json``).  This script
folds them into a single ``bench-trajectory.json`` so one artifact tracks the
performance trajectory of the whole system per commit::

    python benchmarks/collect_results.py --out bench-trajectory.json \
        artifacts/**/*.json

Files that are missing or unreadable are reported and skipped — a benchmark
job that failed must not take the trajectory artifact down with it.  Exits
non-zero only when *no* input could be collected.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable


def experiment_name(payload: dict, path: Path) -> str:
    """The payload's experiment id, falling back to the file stem."""
    name = payload.get("experiment")
    if isinstance(name, str) and name:
        return name
    return path.stem


def collect(paths: Iterable[Path]) -> tuple[dict[str, dict], list[str]]:
    merged: dict[str, dict] = {}
    problems: list[str] = []
    for path in paths:
        if not path.exists():
            problems.append(f"missing: {path}")
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"unreadable {path}: {exc}")
            continue
        if not isinstance(payload, dict):
            problems.append(f"not a JSON object: {path}")
            continue
        merged[experiment_name(payload, path)] = payload
    return merged, problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="merge per-benchmark JSON dumps into one trajectory file"
    )
    parser.add_argument("inputs", nargs="+", help="benchmark JSON files to merge")
    parser.add_argument(
        "--out", default="bench-trajectory.json", help="merged output path"
    )
    args = parser.parse_args(argv)

    merged, problems = collect(Path(p) for p in args.inputs)
    for problem in problems:
        print(f"collect_results: {problem}", file=sys.stderr)
    if not merged:
        print("collect_results: no benchmark results collected", file=sys.stderr)
        return 1

    trajectory = {
        "benchmarks": merged,
        "collected": sorted(merged),
        "skipped": problems,
    }
    out = Path(args.out)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
    print(f"collect_results: wrote {out} ({len(merged)} experiment(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
