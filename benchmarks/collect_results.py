"""Merge the per-job benchmark JSON dumps into one trajectory artifact.

Each benchmark job in CI writes its raw numbers to a standalone JSON file
(``bench_batch_submit.json``, ``bench_sharded_matching.json``,
``bench_remote_transport.json``, ``bench_connection_scaling.json``,
``bench_cluster_scaling.json``, ``bench_durability.json``,
``bench_match_plan.json``, ``bench_tiered_pool.json``,
``bench_scalability.json``, ``bench_figure1.json``).  This script folds
them into a single
``bench-trajectory.json`` so one artifact tracks the performance trajectory
of the whole system per commit::

    python benchmarks/collect_results.py --out bench-trajectory.json \
        artifacts/**/*.json

Every input is validated against a minimal schema (a JSON object carrying a
non-empty ``"experiment"`` string — the merge key).  Files that are missing,
unreadable, or malformed are reported and skipped — a benchmark job that
failed must not take the trajectory artifact down with it.  Exits non-zero
only when *no* input could be collected.

The merged artifact is stamped with the commit SHA (``GITHUB_SHA`` in CI,
``git rev-parse HEAD`` locally) and an ISO-8601 UTC timestamp, so trajectory
files from different runs are directly comparable by provenance.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Optional


def validate_payload(payload: object) -> Optional[str]:
    """Return a schema complaint for *payload*, or ``None`` when it is valid.

    The minimal schema every benchmark dump must satisfy: a JSON object whose
    ``"experiment"`` key is a non-empty string (it becomes the merge key in
    the trajectory artifact).
    """
    if not isinstance(payload, dict):
        return "not a JSON object"
    experiment = payload.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        return 'missing or empty "experiment" key'
    return None


def git_sha() -> str:
    """The commit being benchmarked: CI env var first, local git second."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def collect(paths: Iterable[Path]) -> tuple[dict[str, dict], list[str]]:
    merged: dict[str, dict] = {}
    problems: list[str] = []
    for path in paths:
        if not path.exists():
            problems.append(f"missing: {path}")
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"unreadable {path}: {exc}")
            continue
        complaint = validate_payload(payload)
        if complaint is not None:
            problems.append(f"schema violation in {path}: {complaint}")
            continue
        merged[payload["experiment"]] = payload
    return merged, problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="merge per-benchmark JSON dumps into one trajectory file"
    )
    parser.add_argument("inputs", nargs="+", help="benchmark JSON files to merge")
    parser.add_argument(
        "--out", default="bench-trajectory.json", help="merged output path"
    )
    args = parser.parse_args(argv)

    merged, problems = collect(Path(p) for p in args.inputs)
    for problem in problems:
        print(f"collect_results: warning: {problem}", file=sys.stderr)
    if not merged:
        print("collect_results: no benchmark results collected", file=sys.stderr)
        return 1

    trajectory = {
        "benchmarks": merged,
        "collected": sorted(merged),
        "skipped": problems,
        "git_sha": git_sha(),
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    out = Path(args.out)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
    print(f"collect_results: wrote {out} ({len(merged)} experiment(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
