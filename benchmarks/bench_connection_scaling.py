"""E15 — connection scaling: the asyncio request plane vs. thread-per-request.

The workload models the paper's framing of coordination as a web site's
middle tier: **many mostly-idle clients**.  500 concurrent connections each
park one unmatchable entangled query (pending forever — the "entangled
queries sit waiting for a match" state), then every connection pipelines a
burst of cheap RPCs simultaneously — the high fan-in moment a busy middle
tier produces on every page load.

Both servers host the identical in-process service and speak the identical
wire codec; the *only* difference is the request plane:

* threaded ``CoordinationServer``: one reader thread per connection plus a
  freshly spawned handler thread per request — 500 parked reader threads
  and thousands of near-simultaneous thread spawns inside the burst;
* ``AsyncCoordinationServer``: one event loop, zero per-connection threads,
  requests as tasks (cheap reads on the synchronous fast path).

The measured burst is driven by a **thin frame pump** — pre-encoded request
frames written in one batch per connection, responses counted by framing
alone without JSON decoding — so the measurement reflects the *server's*
request plane, not the driving client's codec cost (both servers face the
identical driver).  Setup (connections, idle submissions, final stats)
uses the real :class:`~repro.service.aio.AsyncRemoteService` client.

The acceptance gate (ISSUE 5): the asyncio server sustains ≥ 500 concurrent
connections with **≥ 3× the threaded server's throughput** at that fan-in
(it measures ~5-7× here; 3× leaves headroom for noisy CI runners).
Set ``BENCH_CONNECTION_JSON=/path/out.json`` to dump the raw numbers (the
CI async-conformance job uploads this as an artifact; ``collect_results.py``
merges it into the trajectory).
"""

from __future__ import annotations

import asyncio
import json
import os
import resource
import time

from repro.service import SystemConfig
from repro.service.aio import AsyncRemoteService, BackgroundAsyncServer
from repro.service.remote import CoordinationServer, codec

CONNECTIONS = int(os.environ.get("BENCH_CONN_CONNECTIONS", "500"))
REQUESTS_PER_CONNECTION = int(os.environ.get("BENCH_CONN_REQUESTS", "8"))
CONNECT_WAVE = 50  # stay under the threaded server's listen backlog
ROUNDS = 2  # best-of-N per plane: the gate judges capacity, not jitter
SPEEDUP_GATE = 3.0

SETUP = (
    "CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT);"
    "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome');"
)

#: The burst request, encoded once and reused: servers echo the correlation
#: id, and the pump counts responses rather than matching them.
BURST_FRAME = codec.encode_frame(
    codec.request_frame(7, "answers", {"relation": "Reservation"})
)


def raise_fd_limit(needed: int) -> None:
    """1000+ sockets in one process: lift the soft RLIMIT_NOFILE if we can."""
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < needed:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(needed, hard), hard))


def idle_sql(index: int) -> str:
    """A booking whose partner never submits — pending forever."""
    return (
        f"SELECT 'idle{index}', fno INTO ANSWER Reservation "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        f"AND ('ghost{index}', fno) IN ANSWER Reservation CHOOSE 1"
    )


async def _skip_frame(reader: asyncio.StreamReader) -> None:
    """Consume one response frame by its length prefix (no JSON decode)."""
    header = await reader.readexactly(4)
    await reader.readexactly(int.from_bytes(header, "big"))


async def _open_idle_connection(
    host: str, port: int, index: int
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """One raw connection parking one forever-pending entangled query."""
    reader, writer = await asyncio.open_connection(host, port)
    submit = codec.encode_frame(
        codec.request_frame(
            1, "submit", {"item": {"sql": idle_sql(index), "owner": f"idle{index}"}}
        )
    )
    writer.write(submit)
    await writer.drain()
    await _skip_frame(reader)  # the pending request-state snapshot
    return reader, writer


async def drive_fan_in(host: str, port: int) -> dict:
    """Open CONNECTIONS idle clients, burst pipelined RPCs, report throughput."""
    admin = await AsyncRemoteService.connect(host, port, connect_timeout=30.0)
    try:
        await admin.execute_script(SETUP)
        await admin.declare_answer_relation(
            "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
        )
        connections: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        for start in range(0, CONNECTIONS, CONNECT_WAVE):
            connections.extend(
                await asyncio.gather(
                    *[
                        _open_idle_connection(host, port, index)
                        for index in range(
                            start, min(start + CONNECT_WAVE, CONNECTIONS)
                        )
                    ]
                )
            )
        try:
            # the measured burst: every connection writes its whole pipeline
            # in one batch, all connections at once — peak fan-in.  For the
            # threaded server that is CONNECTIONS × REQUESTS near-simultaneous
            # handler-thread spawns; for the asyncio server, inline fast-path
            # handling in each connection's read loop.
            async def burst(
                reader: asyncio.StreamReader, writer: asyncio.StreamWriter
            ) -> None:
                writer.write(BURST_FRAME * REQUESTS_PER_CONNECTION)
                await writer.drain()
                for _ in range(REQUESTS_PER_CONNECTION):
                    await _skip_frame(reader)

            started = time.perf_counter()
            await asyncio.gather(*(burst(reader, writer) for reader, writer in connections))
            elapsed = time.perf_counter() - started

            stats = await admin.stats()
            return {
                "elapsed_s": elapsed,
                "requests": CONNECTIONS * REQUESTS_PER_CONNECTION,
                "qps": CONNECTIONS * REQUESTS_PER_CONNECTION / elapsed,
                "pending": stats.pending,
                "transport": dict(stats.transport),
            }
        finally:
            for _reader, writer in connections:
                writer.close()
    finally:
        await admin.close()


def run_threaded() -> dict:
    server = CoordinationServer(config=SystemConfig(seed=0))
    host, port = server.start()
    try:
        return asyncio.run(drive_fan_in(host, port))
    finally:
        server.stop()


def run_asyncio() -> dict:
    server = BackgroundAsyncServer(config=SystemConfig(seed=0))
    host, port = server.start()
    try:
        return asyncio.run(drive_fan_in(host, port))
    finally:
        server.stop()


def _dump_json(payload: dict) -> None:
    path = os.environ.get("BENCH_CONNECTION_JSON")
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


def test_asyncio_server_3x_threaded_at_500_connections(report):
    """The acceptance experiment: ≥500 conns, asyncio ≥ 3× threaded."""
    raise_fd_limit(4 * CONNECTIONS + 512)

    # fresh server per round (the setup script is not re-runnable); the
    # best round per plane measures capacity rather than scheduler jitter
    threaded_rounds = [run_threaded() for _ in range(ROUNDS)]
    asyncio_rounds = [run_asyncio() for _ in range(ROUNDS)]
    threaded = max(threaded_rounds, key=lambda result: result["qps"])
    asyncio_plane = max(asyncio_rounds, key=lambda result: result["qps"])

    # both servers actually sustained the full fan-in, every round
    for result in threaded_rounds + asyncio_rounds:
        assert result["pending"] == CONNECTIONS  # one idle query per connection
        assert result["transport"]["connections_open"] == CONNECTIONS + 1  # + admin
        assert result["transport"]["rejected_backpressure"] == 0

    speedup = asyncio_plane["qps"] / threaded["qps"]
    report(
        connections=CONNECTIONS,
        requests=threaded["requests"],
        threaded_qps=round(threaded["qps"], 1),
        asyncio_qps=round(asyncio_plane["qps"], 1),
        speedup=round(speedup, 2),
    )
    _dump_json(
        {
            "experiment": "connection_scaling",
            "connections": CONNECTIONS,
            "requests_per_connection": REQUESTS_PER_CONNECTION,
            "threaded_elapsed_s": threaded["elapsed_s"],
            "asyncio_elapsed_s": asyncio_plane["elapsed_s"],
            "threaded_qps": threaded["qps"],
            "asyncio_qps": asyncio_plane["qps"],
            "speedup": speedup,
            "threaded_transport": threaded["transport"],
            "asyncio_transport": asyncio_plane["transport"],
        }
    )
    # the acceptance gate: the asyncio plane is ≥ 3× the threaded one here
    assert speedup >= SPEEDUP_GATE, (
        f"asyncio server only {speedup:.2f}x the threaded throughput at "
        f"{CONNECTIONS}-connection fan-in (gate: {SPEEDUP_GATE}x)"
    )
