"""E15 — durability overhead and recovery speed of the write-ahead log.

Two questions decide whether the durability subsystem is production-viable:

1. **What does journaling cost on the submit path?**  The workload batches
   unmatchable entangled queries through ``submit_many`` (the middle tier's
   bulk path) against three configurations: WAL off, WAL on with the
   ``"batch"`` group-commit policy (one fsync per batch), and WAL on with
   ``"always"`` (one fsync per record, the paranoid bound).  The acceptance
   gate: group-commit WAL throughput must stay within 2× of the WAL-off
   path (``>= 0.5×``).

2. **How fast does a crashed system come back?**  A 10k-query log (no
   snapshot — the worst case) is replayed into a fresh system; the gate is
   that every query recovers as pending, and the experiment reports the
   replay rate.

Set ``BENCH_DURABILITY_JSON=/path/out.json`` to dump the raw numbers (the CI
durability job uploads this as an artifact, and
``benchmarks/collect_results.py`` merges it into the ``bench-trajectory``
artifact).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from typing import Optional

from repro.core.config import SystemConfig
from repro.core.system import YoutopiaSystem

BATCH_SIZE = 200
THROUGHPUT_QUERIES = 3000
RECOVERY_QUERIES = 10_000
RELATION_FAN_OUT = 64  # distinct answer relations keep match attempts cheap


def pending_sql(index: int) -> str:
    """An entangled query whose partner never arrives (stays pending)."""
    relation = f"R{index % RELATION_FAN_OUT}"
    return (
        f"SELECT 'u{index}', x INTO ANSWER {relation} "
        f"WHERE x IN (SELECT x FROM Vals) "
        f"AND ('ghost{index}', x) IN ANSWER {relation} CHOOSE 1"
    )


def build_system(data_dir: Optional[str], fsync_policy: str = "batch") -> YoutopiaSystem:
    config = SystemConfig(
        seed=0, data_dir=data_dir, fsync_policy=fsync_policy, snapshot_interval=0
    )
    system = YoutopiaSystem(config=config)
    system.execute("CREATE TABLE Vals (x INT PRIMARY KEY)")
    system.execute("INSERT INTO Vals VALUES (1), (2), (3)")
    return system


def measure_submit_throughput(
    data_dir: Optional[str], fsync_policy: str, total: int
) -> dict[str, float]:
    system = build_system(data_dir, fsync_policy)
    try:
        started = time.perf_counter()
        for start in range(0, total, BATCH_SIZE):
            system.submit_many(
                [pending_sql(index) for index in range(start, min(start + BATCH_SIZE, total))]
            )
        elapsed = time.perf_counter() - started
        assert system.coordinator.pending_count() == total
        durability = system.durability_stats()
        return {
            "queries": total,
            "batch_size": BATCH_SIZE,
            "elapsed_seconds": elapsed,
            "throughput_qps": total / elapsed,
            "wal_fsyncs": durability.get("wal_fsyncs", 0),
            "wal_group_commits": durability.get("wal_group_commits", 0),
            "wal_records": durability.get("wal_records_appended", 0),
        }
    finally:
        # close() would checkpoint (and on the WAL-off path do nothing);
        # shut the coordinator down without timing that in.
        system.coordinator.shutdown()
        if system.durability is not None:
            system.durability.close()


def maybe_dump_json(payload: dict) -> None:
    path = os.environ.get("BENCH_DURABILITY_JSON")
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


_RESULTS: dict[str, dict] = {}


def test_group_commit_wal_submit_throughput(report):
    """The acceptance gate: batch-fsync WAL >= 0.5x the WAL-off path."""
    wal_dir = tempfile.mkdtemp(prefix="bench-wal-")
    always_dir = tempfile.mkdtemp(prefix="bench-wal-always-")
    try:
        wal_off = measure_submit_throughput(None, "batch", THROUGHPUT_QUERIES)
        wal_batch = measure_submit_throughput(wal_dir, "batch", THROUGHPUT_QUERIES)
        # the per-record-fsync bound runs a smaller slice: it measures the
        # disk, not the system, and one fsync per record is slow by design
        wal_always = measure_submit_throughput(always_dir, "always", THROUGHPUT_QUERIES // 10)
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)
        shutil.rmtree(always_dir, ignore_errors=True)

    ratio = wal_batch["throughput_qps"] / wal_off["throughput_qps"]
    # group commit: one fsync per submit_many batch, not one per record
    assert wal_batch["wal_group_commits"] == THROUGHPUT_QUERIES // BATCH_SIZE
    assert wal_batch["wal_fsyncs"] <= 2 * (THROUGHPUT_QUERIES // BATCH_SIZE)
    assert ratio >= 0.5, (
        f"group-commit WAL throughput only {ratio:.2f}x of the WAL-off path"
    )

    _RESULTS["submit_throughput"] = {
        "wal_off": wal_off,
        "wal_batch": wal_batch,
        "wal_always": wal_always,
        "batch_vs_off_ratio": ratio,
    }
    report(
        wal_off_qps=round(wal_off["throughput_qps"], 1),
        wal_batch_qps=round(wal_batch["throughput_qps"], 1),
        wal_always_qps=round(wal_always["throughput_qps"], 1),
        batch_vs_off_ratio=round(ratio, 3),
        batch_fsyncs=wal_batch["wal_fsyncs"],
    )


def test_recovery_time_for_10k_query_log(report):
    """Replay a 10k-submission log into a fresh system; everything recovers."""
    data_dir = tempfile.mkdtemp(prefix="bench-recovery-")
    try:
        config = SystemConfig(
            seed=0, data_dir=data_dir, fsync_policy="batch", snapshot_interval=0
        )
        system = build_system(data_dir, "batch")
        for start in range(0, RECOVERY_QUERIES, BATCH_SIZE):
            system.submit_many(
                [pending_sql(index) for index in range(start, start + BATCH_SIZE)]
            )
        assert system.coordinator.pending_count() == RECOVERY_QUERIES
        # crash: no checkpoint — the log is the only state (the data-dir
        # lock must be released for the "restarted" system to open it)
        system.coordinator.journal = None
        system.coordinator.shutdown()
        system.durability.close()

        restart_started = time.perf_counter()
        recovered = YoutopiaSystem(config=config)
        restart_elapsed = time.perf_counter() - restart_started
        try:
            assert recovered.recovery is not None
            replay_elapsed = recovered.recovery.elapsed_seconds
            assert recovered.coordinator.pending_count() == RECOVERY_QUERIES
            assert not recovered.recovery.replay_errors
        finally:
            recovered.close()

        # after the (post-recovery or clean-shutdown) checkpoint a second
        # restart reads the snapshot instead of replaying the log
        second_started = time.perf_counter()
        second = YoutopiaSystem(config=config)
        second_elapsed = time.perf_counter() - second_started
        try:
            assert second.coordinator.pending_count() == RECOVERY_QUERIES
            assert second.recovery.records_replayed == 0
        finally:
            second.close()
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

    _RESULTS["recovery"] = {
        "queries": RECOVERY_QUERIES,
        "log_replay_seconds": replay_elapsed,
        "log_replay_qps": RECOVERY_QUERIES / replay_elapsed,
        "restart_wall_seconds": restart_elapsed,
        "snapshot_restart_wall_seconds": second_elapsed,
    }
    payload = {"experiment": "bench_durability", **_RESULTS}
    maybe_dump_json(payload)
    report(
        log_replay_s=round(replay_elapsed, 2),
        log_replay_qps=round(RECOVERY_QUERIES / replay_elapsed, 0),
        restart_wall_s=round(restart_elapsed, 2),
        snapshot_restart_s=round(second_elapsed, 2),
    )
