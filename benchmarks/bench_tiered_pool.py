"""E16 — the tiered pending pool: bounded memory at 100k parked queries.

The paper's steady state is a large population of entangled queries parked
waiting for partners.  Untiered, every parked query keeps its parsed domain
subqueries, predicate trees and compiled match plan resident, so the pending
pool is the process's dominant allocation.  The tiered pool bounds it: at
most ``pending_memory_limit`` queries stay fully materialized, the rest
spill to the cold store and page back in on candidate hits.

Three experiments, asserted hard:

* **Parking capacity** — 100 000 unmatchable queries are parked under a
  512-query memory limit.  Every one must be accepted and pending, and the
  peak hot-set size must never exceed the limit (plus the one in-flight
  insertion slot: eviction runs right after the insert that overflows).
* **Hot-path throughput** — a stream of matching pairs is submitted over a
  pool of spilled noise.  Tiered submit throughput must stay ≥0.7× the
  untiered pool's: eviction bookkeeping may tax the hot path, paging must
  not sit on it.
* **Cold page-in** — partners arrive for queries that are resident only in
  the cold store; every match must succeed via transparent page-in, and the
  per-page-in latency is reported.

Set ``BENCH_TIERED_JSON=/path/out.json`` to dump the raw numbers (the CI
``tiering-benchmark`` job uploads this as an artifact for bench-trajectory).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from repro.core.config import SystemConfig
from repro.core.system import YoutopiaSystem

PARKED_QUERIES = 100_000
PARK_MEMORY_LIMIT = 512

NOISE_QUERIES = 2_000
HOT_PAIRS = 1_000
HOT_MEMORY_LIMIT = 256
THROUGHPUT_GATE = 0.7

PAGE_IN_POOL = 2_000
PAGE_IN_MEMORY_LIMIT = 64
PAGE_IN_MATCHES = 100


def build_system(**config_kwargs) -> YoutopiaSystem:
    system = YoutopiaSystem(config=SystemConfig(seed=0, **config_kwargs))
    system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    system.execute("INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris')")
    system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return system


def entangled(user: str, partner: str) -> str:
    return (
        f"SELECT '{user}', fno INTO ANSWER Reservation "
        f"WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        f"AND ('{partner}', fno) IN ANSWER Reservation CHOOSE 1"
    )


def park_unmatchable(system: YoutopiaSystem, count: int, prefix: str) -> float:
    """Submit ``count`` clones of one unmatchable query; returns the seconds.

    One compile, ``count`` id-replaced submissions: every clone provides the
    same constant and waits on a ghost nobody provides, so no submission ever
    finds a candidate and the loop measures pure pool/park cost.  The ids
    (``{prefix}-NNNNNN``) stay clear of the generated ``qN`` namespace.
    """
    template = system.compile(entangled(prefix, f"ghost-{prefix}"), owner=prefix)
    started = time.perf_counter()
    for index in range(count):
        system.submit_entangled(
            dataclasses.replace(template, query_id=f"{prefix}-{index:06d}")
        )
    return time.perf_counter() - started


def submit_hot_pairs(system: YoutopiaSystem, pairs: int) -> float:
    """Submit ``pairs`` immediately-matching pairs; returns the seconds."""
    left = system.compile(entangled("hot-left", "hot-right"), owner="hot-left")
    right = system.compile(entangled("hot-right", "hot-left"), owner="hot-right")
    started = time.perf_counter()
    for index in range(pairs):
        system.submit_entangled(
            dataclasses.replace(left, query_id=f"hotl-{index:06d}")
        )
        system.submit_entangled(
            dataclasses.replace(right, query_id=f"hotr-{index:06d}")
        )
    return time.perf_counter() - started


def maybe_dump_json(payload: dict) -> None:
    path = os.environ.get("BENCH_TIERED_JSON")
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


_RESULTS: dict = {"experiment": "bench_tiered_pool"}


def test_100k_parked_queries_with_bounded_hot_set(report):
    """The capacity acceptance: 100k parked, hot set capped at the limit."""
    system = build_system(
        pending_memory_limit=PARK_MEMORY_LIMIT, cold_store="sqlite"
    )
    try:
        elapsed = park_unmatchable(system, PARKED_QUERIES, "park")
        stats = system.coordinator.tiering_statistics()

        assert system.coordinator.pending_count() == PARKED_QUERIES
        # the one transient slot: _evict_overflow runs right after the
        # insert that overflowed, so hot momentarily reaches capacity + 1
        assert stats["peak_hot"] <= PARK_MEMORY_LIMIT + 1, stats
        assert stats["hot"] <= PARK_MEMORY_LIMIT
        assert stats["hot"] + stats["cold"] == PARKED_QUERIES
        assert stats["evictions"] >= PARKED_QUERIES - PARK_MEMORY_LIMIT

        park_qps = PARKED_QUERIES / elapsed
        _RESULTS.update(
            parked=PARKED_QUERIES,
            park_memory_limit=PARK_MEMORY_LIMIT,
            park_seconds=round(elapsed, 3),
            park_qps=round(park_qps, 1),
            park_peak_hot=stats["peak_hot"],
            park_evictions=stats["evictions"],
        )
        maybe_dump_json(_RESULTS)
        report(
            parked=PARKED_QUERIES,
            memory_limit=PARK_MEMORY_LIMIT,
            peak_hot=stats["peak_hot"],
            cold=stats["cold"],
            park_qps=round(park_qps, 1),
        )
    finally:
        system.close()


def test_hot_submit_throughput_within_gate_of_untiered(report):
    """The hot-path acceptance: tiered submit throughput ≥0.7× untiered.

    Both systems carry the same spilled/parked noise pool; the measured
    stream is matching pairs that are answered on arrival, i.e. the workload
    a correctly-tiered system should serve almost entirely from the hot set.
    """
    untiered = build_system()
    tiered = build_system(
        pending_memory_limit=HOT_MEMORY_LIMIT, cold_store="sqlite"
    )
    try:
        park_unmatchable(untiered, NOISE_QUERIES, "noise")
        park_unmatchable(tiered, NOISE_QUERIES, "noise")
        assert tiered.coordinator.tiering_statistics()["cold"] > 0

        untiered_seconds = submit_hot_pairs(untiered, HOT_PAIRS)
        tiered_seconds = submit_hot_pairs(tiered, HOT_PAIRS)

        answered = 2 * HOT_PAIRS
        assert untiered.coordinator.pending_count() == NOISE_QUERIES
        assert tiered.coordinator.pending_count() == NOISE_QUERIES

        untiered_qps = answered / untiered_seconds
        tiered_qps = answered / tiered_seconds
        throughput_ratio = tiered_qps / untiered_qps
        assert throughput_ratio >= THROUGHPUT_GATE, (
            f"tiered hot-path throughput only {throughput_ratio:.2f}x untiered"
        )

        _RESULTS.update(
            hot_pairs=HOT_PAIRS,
            noise_queries=NOISE_QUERIES,
            untiered_qps=round(untiered_qps, 1),
            tiered_qps=round(tiered_qps, 1),
            throughput_ratio=round(throughput_ratio, 3),
        )
        maybe_dump_json(_RESULTS)
        report(
            untiered_qps=round(untiered_qps, 1),
            tiered_qps=round(tiered_qps, 1),
            throughput_ratio=round(throughput_ratio, 2),
        )
    finally:
        untiered.close()
        tiered.close()


def test_cold_queries_answer_via_page_in(report):
    """The paging acceptance: cold-resident queries still coordinate."""
    system = build_system(
        pending_memory_limit=PAGE_IN_MEMORY_LIMIT, cold_store="sqlite"
    )
    try:
        # distinct constants per parked query so each partner match is 1:1
        for index in range(PAGE_IN_POOL):
            system.submit_entangled(
                entangled(f"solo-{index}", f"peer-{index}"), owner=f"solo-{index}"
            )
        stats = system.coordinator.tiering_statistics()
        assert stats["cold"] >= PAGE_IN_POOL - PAGE_IN_MEMORY_LIMIT

        # the earliest arrivals are cold under both eviction policies
        started = time.perf_counter()
        for index in range(PAGE_IN_MATCHES):
            partner = system.submit_entangled(
                entangled(f"peer-{index}", f"solo-{index}"), owner=f"peer-{index}"
            )
            assert partner.is_answered, f"partner {index} failed to match"
        elapsed = time.perf_counter() - started

        stats = system.coordinator.tiering_statistics()
        assert stats["page_ins"] >= PAGE_IN_MATCHES
        assert system.coordinator.pending_count() == PAGE_IN_POOL - PAGE_IN_MATCHES

        _RESULTS.update(
            page_in_pool=PAGE_IN_POOL,
            page_in_matches=PAGE_IN_MATCHES,
            page_ins=stats["page_ins"],
            avg_page_in_ms=stats["avg_page_in_ms"],
            page_in_match_seconds=round(elapsed, 3),
        )
        maybe_dump_json(_RESULTS)
        report(
            page_ins=stats["page_ins"],
            avg_page_in_ms=stats["avg_page_in_ms"],
            matches=PAGE_IN_MATCHES,
        )
    finally:
        system.close()
