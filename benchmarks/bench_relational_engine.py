"""Substrate micro-benchmarks: parser and relational execution engine.

Not an experiment from the paper, but the coordination path grounds every
entangled query through these components, so their costs bound the end-to-end
numbers of E10.  Reported for completeness and for catching regressions in the
substrate.
"""

from __future__ import annotations

import pytest

from repro.apps.travel.dataset import generate_dataset, install_and_load
from repro.core.system import YoutopiaSystem
from repro.sqlparser import parse_statement

COMPLEX_SQL = (
    "SELECT f.dest, COUNT(*) AS n, AVG(f.price) AS avg_price "
    "FROM Flights f JOIN Seats s ON f.fno = s.fno "
    "WHERE f.price BETWEEN 100 AND 900 AND f.seats > 0 "
    "GROUP BY f.dest HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5"
)

ENTANGLED_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)


@pytest.fixture(scope="module")
def loaded_system():
    system = YoutopiaSystem(seed=0)
    install_and_load(system, generate_dataset(num_flights=400, num_hotels=100,
                                              num_users=50, seed=0))
    system.database.table("Flights").create_index("by_dest", ["dest"])
    return system


def test_parse_plain_select(benchmark, report):
    statement = benchmark(lambda: parse_statement(COMPLEX_SQL))
    report(statement="complex aggregate join", tokens=len(COMPLEX_SQL.split()))
    assert statement is not None


def test_parse_entangled_select(benchmark, report):
    statement = benchmark(lambda: parse_statement(ENTANGLED_SQL))
    report(statement="paper example", tokens=len(ENTANGLED_SQL.split()))
    assert statement is not None


def test_point_lookup_via_index(benchmark, report, loaded_system):
    result = benchmark(
        lambda: loaded_system.query("SELECT fno FROM Flights WHERE dest = 'Paris' AND seats > 0")
    )
    report(rows=len(result), table_rows=400, plan="IndexLookup")
    assert len(result) > 0


def test_join_aggregate_query(benchmark, report, loaded_system):
    result = benchmark(lambda: loaded_system.query(COMPLEX_SQL))
    report(rows=len(result), plan="Join+Aggregate+Sort")
    assert len(result) > 0


def test_insert_throughput(benchmark, report, loaded_system):
    counter = iter(range(10_000_000, 20_000_000))

    def insert_row():
        fno = next(counter)
        loaded_system.execute(
            f"INSERT INTO Flights VALUES ({fno}, 'Ithaca', 'Paris', '2011-06-13', 500.0, 10, 'United')"
        )

    benchmark(insert_row)
    report(table="Flights", unit="single-row INSERT")
